"""The in-order 4-wide scoreboard pipeline (detailed timing model).

Timing semantics, per instruction, in program order:

* an instruction issues at the earliest cycle that satisfies (a) program
  order, (b) source operands ready, (c) an issue slot free this cycle within
  the machine width, (d) a functional-unit slot free for its class,
  (e) instruction fetch not stalled (I-cache miss or branch redirect);
* loads pay the full cache-hierarchy latency before their destination is
  ready; stores retire through a store buffer (no dependent latency);
* divides occupy their unpipelined unit until completion;
* a mispredicted branch stalls fetch for the machine's redirect penalty.

Register ready-times are absolute cycle numbers that persist across sample
windows; the detailed warm-up window preceding each measured sample (the
SMARTS/PGSS methodology) is what re-establishes them after a long
fast-forward, exactly as in the paper.

Two execution entry points share one timing core (:meth:`_issue_timing`):

* :meth:`execute_event` — the scalar reference path, one dynamic block at
  a time;
* :meth:`execute_run` — the batched path over run-length
  :class:`~repro.program.stream.BlockRun` records.  It splits every block
  execution into an *architectural phase* (cache accesses, predictor
  update — none of which read the clock) and a *timing phase* (the
  scoreboard — a pure function of the architectural outcomes and the
  time-like state expressed relative to the current cycle).  Relative
  timing contexts are interned to small integer ids and the timing
  transition for (context, latencies, prediction outcome) is memoized,
  so repeated block executions walk an integer chain instead of running
  the scoreboard; steady spans collapse further into closed form (see
  DESIGN.md §15).

Both paths leave every observable byte identical: cycle counts, cache
tag/dirty/stat state, predictor tables and stats, and op accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Any, Dict, List, Tuple

from ..branch import BranchPredictor
from ..config import MachineConfig
from ..isa import FU_CLASS, FU_LIMITS, N_REGS, Op
from ..isa.instructions import FuClass
from ..memory import CacheHierarchy
from ..program.stream import BlockEvent, BlockRun

__all__ = ["InOrderPipeline", "WindowResult"]

_OP_LOAD = int(Op.LOAD)
_OP_STORE = int(Op.STORE)
_OP_BRANCH = int(Op.BRANCH)
_OP_IDIV = int(Op.IDIV)
_OP_FDIV = int(Op.FDIV)

_FU_OF_OP: List[int] = [int(FU_CLASS[Op(i)]) for i in range(len(Op))]
_N_FU = len(FuClass)

#: Per-class issue limits as a list indexed by FuClass value.
_FU_LIMIT_LIST: List[int] = [FU_LIMITS[FuClass(i)] for i in range(_N_FU)]

#: Transition-memo size cap; distinct contexts per block are few, so this
#: is a backstop against pathological key churn, not a working-set tuner.
_MEMO_CAP = 65_536


@dataclass(frozen=True)
class WindowResult:
    """Timing outcome of one detailed window.

    Attributes:
        ops: operations executed.
        cycles: cycles elapsed.
    """

    ops: int
    cycles: int

    @property
    def ipc(self) -> float:
        """Instructions per cycle over the window (0.0 for empty windows)."""
        return self.ops / self.cycles if self.cycles else 0.0


class InOrderPipeline:
    """Cycle-accurate in-order superscalar timing model.

    Args:
        machine: machine configuration (width, penalties).
        hierarchy: the cache hierarchy shared with the functional modes.
        predictor: the branch predictor shared with the functional modes.
    """

    def __init__(
        self,
        machine: MachineConfig,
        hierarchy: CacheHierarchy,
        predictor: BranchPredictor,
    ) -> None:
        self.machine = machine
        self.hierarchy = hierarchy
        self.predictor = predictor
        self.cycle = 0
        self._reg_ready: List[int] = [0] * N_REGS
        self._fu_busy: List[int] = [0] * _N_FU  # unpipelined-unit next-free
        self._fetch_ready = 0
        self._width_used = 0
        self._class_used: List[int] = [0] * _N_FU
        self._l1i_hit_latency = hierarchy.l1i.hit_latency
        self._l1d_hit_latency = hierarchy.l1d.hit_latency
        #: Completion-cycle min-heap of in-flight L1 misses (<= n_mshrs
        #: live entries; completed ones are drained lazily).
        self._mshrs: List[int] = []
        # Batched-path memoization (see execute_run).  Relative timing
        # contexts are interned: _ctx_ids maps the full context tuple to a
        # small id, _ctx_states holds the tuple for materialization, and
        # _chain maps (context id, latencies, prediction outcome) to the
        # scoreboard transition it produces.  All of it is expressed
        # relative to the current cycle, so entries stay valid across
        # windows, timing resets and checkpoint restores.
        self._ctx_ids: Dict[Tuple[Any, ...], int] = {}
        self._ctx_states: List[Tuple[Any, ...]] = []
        self._chain: Dict[Tuple[Any, ...], Tuple[Any, ...]] = {}
        self._paths: Dict[int, Any] = {}
        self._plans: Dict[int, Tuple[Any, ...]] = {}

    def reset_timing(self) -> None:
        """Clear all timing state (cycle counter, scoreboards, stalls).

        The transition memo survives: its entries relate relative contexts
        and are independent of any absolute cycle numbers.
        """
        self.cycle = 0
        self._reg_ready = [0] * N_REGS
        self._fu_busy = [0] * _N_FU
        self._fetch_ready = 0
        self._width_used = 0
        self._class_used = [0] * _N_FU
        self._mshrs = []

    def execute_event(self, event: BlockEvent) -> None:
        """Run one dynamic basic-block execution through the pipeline."""
        block, taken, k = event
        hierarchy = self.hierarchy

        # Architectural phase.  Cache and predictor transitions never read
        # the clock, so running them up front (in program order: fetch,
        # data accesses, terminating branch) leaves state byte-identical
        # to issue-time interleaving while decoupling timing from them.
        fetch_stall = 0
        l1i_hit = self._l1i_hit_latency
        for line in block.inst_lines:
            extra = hierarchy.inst_latency(line) - l1i_hit
            if extra > 0:
                fetch_stall += extra

        lats: List[int] = []
        if block.mem_positions:
            patterns = block.mem_patterns
            mem_idx = block.mem_idx
            data_latency = hierarchy.data_latency
            for pos in block.mem_positions:
                pat = patterns[mem_idx[pos]]
                lats.append(data_latency(pat.address(k), pat.is_write))

        correct = self.predictor.predict_update(block.branch_address, taken)

        self._issue_timing(block, lats, fetch_stall, correct)

    def _issue_timing(
        self,
        block: Any,
        lats: Any,
        fetch_stall: int,
        correct: bool,
    ) -> None:
        """Scoreboard-issue one block execution (the shared timing core).

        Pure timing: the architectural phase has already happened and its
        outcomes arrive as arguments — per-memory-access latencies (in
        program order), the accumulated I-fetch stall beyond the pipelined
        L1 hit time, and the branch-prediction outcome.
        """
        reg_ready = self._reg_ready
        fu_busy = self._fu_busy
        class_used = self._class_used
        width = self.machine.issue_width
        limits = _FU_LIMIT_LIST
        cycle = self.cycle
        width_used = self._width_used
        fetch_ready = self._fetch_ready
        mshrs = self._mshrs
        n_mshrs = self.machine.n_mshrs
        l1d_hit = self._l1d_hit_latency

        if fetch_stall > 0:
            if fetch_ready < cycle:
                fetch_ready = cycle
            fetch_ready += fetch_stall

        mem_i = 0
        for op, fu, dst, src1, src2, lat, _mi in block.rows:
            # Earliest cycle satisfying dependences, order, and fetch.
            t = cycle
            if src1 > 0 and reg_ready[src1] > t:
                t = reg_ready[src1]
            if src2 > 0 and reg_ready[src2] > t:
                t = reg_ready[src2]
            if fetch_ready > t:
                t = fetch_ready
            if op == _OP_IDIV or op == _OP_FDIV:
                if fu_busy[fu] > t:
                    t = fu_busy[fu]
            if t > cycle:
                cycle = t
                width_used = 0
                class_used[0] = 0
                class_used[1] = 0
                class_used[2] = 0
                class_used[3] = 0
            # Structural hazards: machine width and per-class slots.
            while width_used >= width or class_used[fu] >= limits[fu]:
                cycle += 1
                width_used = 0
                class_used[0] = 0
                class_used[1] = 0
                class_used[2] = 0
                class_used[3] = 0
            width_used += 1
            class_used[fu] += 1

            if op == _OP_LOAD or op == _OP_STORE:
                mlat = lats[mem_i]
                mem_i += 1
                if mlat > l1d_hit:
                    # L1 miss: needs a free miss-status register; a full
                    # MSHR file stalls the in-order pipe until one drains.
                    while mshrs and mshrs[0] <= cycle:
                        heappop(mshrs)
                    if len(mshrs) >= n_mshrs:
                        earliest = heappop(mshrs)
                        if earliest > cycle:
                            cycle = earliest
                            width_used = 0
                            class_used[0] = 0
                            class_used[1] = 0
                            class_used[2] = 0
                            class_used[3] = 0
                    heappush(mshrs, cycle + mlat)
                if op == _OP_LOAD and dst > 0:
                    reg_ready[dst] = cycle + mlat
            elif op == _OP_BRANCH:
                if not correct:
                    stall = cycle + self.machine.mispredict_penalty
                    if stall > fetch_ready:
                        fetch_ready = stall
            else:
                if dst > 0:
                    reg_ready[dst] = cycle + lat
                if op == _OP_IDIV or op == _OP_FDIV:
                    fu_busy[fu] = cycle + lat

        self.cycle = cycle
        self._width_used = width_used
        self._fetch_ready = fetch_ready

    def _build_plan(self, block: Any) -> Tuple[Any, ...]:
        """Precompute the per-block constants of the batched path."""
        from ..program.mem_patterns import PatternKind

        patterns = [block.mem_patterns[j] for j in (block.mem_idx[p] for p in block.mem_positions)]
        paw = tuple((pat.address, pat.is_write) for pat in patterns)
        # Probe the most restrictive (largest-footprint) patterns first so
        # a zero span is discovered before any fine-grained line walking.
        probe_pats = tuple(sorted(patterns, key=lambda p: p.span, reverse=True))
        l1d_size = self.hierarchy.l1d.config.size_bytes
        never_silent = any(
            pat.kind in (PatternKind.RANDOM, PatternKind.CHASE)
            and pat.span > l1d_size
            for pat in patterns
        )
        # Multi-pattern all-strided blocks take the joint net-silence
        # probe, which also covers patterns that share cache sets
        # (program-order tuple); the two-access case gets the unrolled
        # pair walk; single-pattern blocks use the leaner per-pattern
        # walks directly.
        joint = pair = None
        if len(patterns) > 1 and all(
            pat.kind in (PatternKind.STREAM, PatternKind.REUSE) for pat in patterns
        ):
            progs = tuple(
                (pat.base, pat.stride, pat.span, pat.is_write) for pat in patterns
            )
            if len(progs) == 2:
                pair = progs
            else:
                joint = progs
        # Every pattern's address generator is unpacked so the hot loop
        # computes addresses inline instead of calling into it: strided
        # patterns carry (True, base, stride, span, is_write), hashed ones
        # (False, base, seed, span, is_write) — see MemPattern.address.
        pinfo = tuple(
            (True, pat.base, pat.stride, pat.span, pat.is_write)
            if pat.kind in (PatternKind.STREAM, PatternKind.REUSE)
            else (False, pat.base, pat.seed, pat.span, pat.is_write)
            for pat in patterns
        )
        p0 = pinfo[0][:4] if len(patterns) == 1 else None
        n_pat = len(patterns)
        # Two-access blocks get every latency pair precomputed so the hot
        # loop indexes by a 0..8 level code instead of building tuples.
        if n_pat == 2:
            l1 = self._l1d_hit_latency
            l2 = l1 + self.hierarchy.l2.hit_latency
            mem = l2 + self.machine.memory_latency
            levels = (l1, l2, mem)
            lat_pairs = tuple((a, b) for a in levels for b in levels)
        else:
            lat_pairs = None
        return (
            paw,
            probe_pats,
            joint,
            pair,
            pinfo,
            lat_pairs,
            p0,
            (self._l1d_hit_latency,) * n_pat,
            never_silent,
            n_pat,
            block.live_in_regs,
            block.written_regs,
            block.div_fus,
            block.branch_address,
            len(block.inst_lines),
        )

    def _intern_context(
        self, bid: int, live_in: Tuple[int, ...], div_fus: Tuple[int, ...]
    ) -> int:
        """Intern the current relative timing context; return its id.

        The context is everything the scoreboard can read, expressed
        relative to the current cycle: issue-slot fill, per-class fill,
        fetch stall, unpipelined-unit occupancy, the block's live-in
        register ready offsets, and in-flight miss completions.  Offsets
        in the past clamp to zero — every consumer compares them against
        times at or beyond the current cycle, so the clamped context is
        behaviourally exact while maximising reuse.
        """
        cycle = self.cycle
        reg_ready = self._reg_ready
        fu_busy = self._fu_busy
        cu = self._class_used
        mshrs = self._mshrs
        if mshrs:
            mshr_rel = tuple(sorted(t - cycle for t in mshrs if t > cycle))
        else:
            mshr_rel = ()
        fr = self._fetch_ready - cycle
        state = (
            self._width_used,
            cu[0],
            cu[1],
            cu[2],
            cu[3],
            fr if fr > 0 else 0,
            tuple(
                [(v - cycle) if (v := fu_busy[f]) > cycle else 0 for f in div_fus]
            ),
            tuple(
                [(v - cycle) if (v := reg_ready[r]) > cycle else 0 for r in live_in]
            ),
            mshr_rel,
        )
        key = (bid,) + state
        sid = self._ctx_ids.get(key)
        if sid is None:
            sid = len(self._ctx_states)
            self._ctx_ids[key] = sid
            self._ctx_states.append(state)
        return sid

    def _materialize(
        self,
        sid: int,
        written_rels: Tuple[int, ...],
        live_in: Tuple[int, ...],
        written: Tuple[int, ...],
        div_fus: Tuple[int, ...],
    ) -> None:
        """Re-anchor absolute timing state from an interned context.

        While the batched path walks memoized transitions it tracks state
        only as a context id; this writes the absolute fields back (at the
        current cycle) so the scoreboard — or any later run — can read
        them.  *written_rels* carries the block's written-register offsets
        from the last applied transition (they are not part of the context
        because their stale inbound values are dead).
        """
        st = self._ctx_states[sid]
        cycle = self.cycle
        self._width_used = st[0]
        cu = self._class_used
        cu[0] = st[1]
        cu[1] = st[2]
        cu[2] = st[3]
        cu[3] = st[4]
        self._fetch_ready = cycle + st[5]
        fu_busy = self._fu_busy
        for f, rel in zip(div_fus, st[6]):
            fu_busy[f] = cycle + rel
        reg_ready = self._reg_ready
        for r, rel in zip(live_in, st[7]):
            reg_ready[r] = cycle + rel
        for r, rel in zip(written, written_rels):
            reg_ready[r] = cycle + rel
        # A sorted ascending list is already a valid heap; entries at or
        # before the current cycle were drained lazily anyway.
        self._mshrs = [cycle + t for t in st[8]]

    def _build_path(
        self, sid0: int, hit_lats: Tuple[int, ...], need: int, int_keys: bool
    ) -> Any:
        """Unroll the memoized transition chain from *sid0* under constant
        steady-span inputs (all-hit latencies, correct taken prediction).

        After an L1 miss the live-in register offsets decay over a dozen
        iterations before the context repeats — without this, every silent
        span walks that decay one chain hit at a time.  The returned path
        ``(cums, sids, wrels, loop_d, complete)`` lets a span apply in
        O(1): ``cums[j]`` is the cycle delta after j steps, ``sids[j]``
        the context after j steps, ``wrels`` each step's written-register
        offsets.  When *complete*, the walk reached a self-loop fixed
        point and ``loop_d`` extends it to any length in closed form;
        otherwise the path is a prefix (the chain had no entry yet for
        the next step — the caller applies what exists and trickles on,
        which memoizes further steps for the next build).

        Walks at least *need* steps when it can; returns None when not
        even two steps are known.  *int_keys* selects the integer
        chain-key encoding used for one- and two-access blocks.  The
        final element records the chain size at build time so callers can
        skip re-walking an incomplete path until new transitions exist.
        """
        chain = self._chain
        cums = [0]
        sids = [sid0]
        wrels: List[Tuple[int, ...]] = []
        s = sid0
        d = 0
        bound = need if need > 32 else 32
        if bound > 96:
            bound = 96
        complete = False
        loop_d = 0
        while len(wrels) < bound:
            t = chain.get((s << 6) | 32 if int_keys else (s, True) + hit_lats)
            if t is None:
                break
            d += t[0]
            cums.append(d)
            ns = t[1]
            sids.append(ns)
            wrels.append(t[2])
            if ns == s:
                complete = True
                loop_d = t[0]
                break
            s = ns
        # A one-step incomplete walk is not worth caching — but a one-step
        # *complete* walk is the common warm case: the span starts at the
        # fixed point itself.
        if not complete and len(wrels) < 2:
            return None
        return (
            tuple(cums),
            tuple(sids),
            tuple(wrels),
            loop_d,
            complete,
            len(chain),
        )

    def execute_run(self, run: BlockRun) -> None:
        """Run a whole run-length record through the pipeline, batched.

        Byte-identical in every observable (cycle count, cache and
        predictor state including stats, memory-access counters) to
        :meth:`execute_event` over ``run.events()``, but built to spend
        far fewer Python operations per block execution:

        * the first iteration performs the real I-fetch accesses (with
          deferred counters) — afterwards every instruction line of the
          block is resident at the MRU slot of its own L1I set and stays
          there for the rest of the run (nothing else touches the L1I),
          so later iterations fetch with zero stall and their I-cache hit
          counters are applied arithmetically at the end.  When iteration
          0 itself fetches entirely from the L1I (no stall), it enters
          the memoized loop like any other iteration — a warm run can
          then collapse into a single closed-form span;
        * data accesses are probed for *silent* spans — stretches of
          iterations whose accesses would all hit L1 at the MRU slot
          without flipping a dirty bit.  Silent accesses change nothing
          but the hit counters, so the whole span's cache work collapses
          to one arithmetic bump and its latencies are known constants;
        * once the uniformly-taken middle of a loop-controlled run finds
          the branch predictor at a fixed point
          (:meth:`~repro.branch.BranchPredictor.is_steady`), remaining
          predictions are bulk-counted and skipped;
        * the scoreboard itself is memoized: the relative timing context
          is interned to an integer id and each (context, latencies,
          outcome) transition is recorded once, so repeats walk
          ``cycle += delta; context = next`` without touching the
          scoreboard arrays (absolute state is re-anchored on exit); a
          self-loop transition inside a silent + predictor-steady span
          finishes the span in closed form.

        Any condition that cannot be proven cheaply falls back to the
        memoized per-iteration path, and from there to the real scalar
        scoreboard — never to an approximation.
        """
        block = run.block
        n = run.n
        if n == 1:
            self.execute_event(BlockEvent(block, run.taken_at(0), run.k_start))
            return
        hierarchy = self.hierarchy
        if len(block.inst_lines) > hierarchy.l1i.n_sets:
            # Degenerate geometry: the block's own fetch lines collide
            # within a set, so iteration 0 does not pin them all at MRU.
            for event in run.events():
                self.execute_event(event)
            return

        if len(self._chain) >= _MEMO_CAP:
            self._chain.clear()
            self._ctx_ids.clear()
            self._ctx_states.clear()
            self._paths.clear()

        bid = block.bid
        plan = self._plans.get(bid)
        if plan is None:
            plan = self._build_plan(block)
            self._plans[bid] = plan
        (
            paw,
            probe_pats,
            joint,
            pair,
            pinfo,
            lat_pairs,
            p0,
            hit_lats,
            never_silent,
            n_pat,
            live_in,
            written,
            div_fus,
            branch_address,
            n_lines,
        ) = plan

        predictor = self.predictor
        predict_update = predictor.predict_update
        taken_streak = predictor.taken_streak
        l1d = hierarchy.l1d
        l1d_access = l1d.access_quiet
        l2_access = hierarchy.l2.access_quiet
        salt = hierarchy.address_salt
        l1_hit = self._l1d_hit_latency
        l2_lat = l1_hit + hierarchy.l2.hit_latency
        mem_lat = l2_lat + self.machine.memory_latency
        silent_span = hierarchy.silent_data_span
        joint_span = l1d.silent_block_span
        pair_span = l1d.silent_block_pair_span
        span_strided = l1d.silent_span_strided
        span_hashed = l1d.silent_span_hashed
        if pair is not None:
            pr1, pr2 = pair
        chain = self._chain
        chain_get = chain.get
        paths = self._paths
        paths_get = paths.get
        reg_ready = self._reg_ready
        if n_pat == 1:
            f0, w0 = paw[0]
            l2_lats = (l2_lat,)
            mem_lats = (mem_lat,)
            strided0, b0, x0, sp0 = p0
        else:
            f0 = None
        single = f0 is not None
        pair2 = n_pat == 2
        if single or pair2:
            # One- and two-access blocks run the access_quiet state
            # transition inline (see Cache.hot_refs) — the L1D-miss/L2
            # walk is the hottest sequence of the whole mode.
            d_tags, d_dirty, d_shift, d_assoc, d_pow2, d_mask, d_nsets = (
                l1d.hot_refs()
            )
            u_tags, u_dirty, u_shift, u_assoc, u_pow2, u_mask, u_nsets = (
                hierarchy.l2.hot_refs()
            )
        int_keys = single or pair2  # integer chain keys for these blocks
        d_wb = u_wb = 0  # deferred writeback counts from inlined accesses

        takens = run.takens
        last_i = n - 1
        if takens is None:
            uniform_until = last_i - 1 if run.ends_entry else last_i
        else:
            uniform_until = -1

        # Completed misses from earlier runs would otherwise linger in the
        # heap and tax every context build; draining them is invisible
        # (the scalar path drains lazily, to the same effect).
        mshrs = self._mshrs
        c0 = self.cycle
        while mshrs and mshrs[0] <= c0:
            heappop(mshrs)

        pending = None  # written-reg offsets of the last walked transition
        mem_extra = 0  # deferred hierarchy.memory_accesses increments
        l1d_n = l1d_h = l2_n = l2_h = 0  # deferred cache access/hit counts
        pred_left = 0  # taken predictions already applied in bulk
        silent_left = 0
        probe_skip = False  # span ended at a known non-silent iteration
        span_hint = -1  # probe-free silent span proven by a line fill
        line_mask = (1 << d_shift) - 1 if single else 0

        # Iteration 0's I-fetch is always real — the accesses pin every
        # instruction line at the MRU slot of its L1I set for the rest of
        # the run (and their MRU rotations are observable state).
        l1i_access = hierarchy.l1i.access_quiet
        l2_hit_extra = hierarchy.l2.hit_latency
        memory_latency = self.machine.memory_latency
        fetch_stall = 0
        l1i_h0 = 0
        for line in block.inst_lines:
            a = line ^ salt
            if l1i_access(a):
                l1i_h0 += 1
            else:
                l2_n += 1
                if l2_access(a):
                    l2_h += 1
                    fetch_stall += l2_hit_extra
                else:
                    mem_extra += 1
                    fetch_stall += l2_hit_extra + memory_latency

        if fetch_stall:
            # Rare cold fetch: run iteration 0 through the real scoreboard
            # (the memo chain assumes stall-free fetch) and rejoin at 1.
            k = run.k_start
            buf = []
            for f, w in paw:
                a = f(k) ^ salt
                l1d_n += 1
                if l1d_access(a, w):
                    l1d_h += 1
                    buf.append(l1_hit)
                else:
                    l2_n += 1
                    if l2_access(a, w):
                        l2_h += 1
                        buf.append(l2_lat)
                    else:
                        mem_extra += 1
                        buf.append(mem_lat)
            correct = predict_update(branch_address, run.taken_at(0))
            self._issue_timing(block, buf, fetch_stall, correct)
            i = 1
            k += 1
        else:
            i = 0
            k = run.k_start

        sid = self._intern_context(bid, live_in, div_fus)
        cycle = self.cycle  # local through the loop; synced around calls
        while i <= last_i:
            if never_silent and single and pred_left > 0:
                # Never-silent single-access blocks (a cache-thrashing
                # loop) spend the uniformly-predicted middle of the run
                # here: address, inline access, memoized timing step —
                # none of the span/branch bookkeeping of the general
                # path, which cannot apply to them.  The access body is
                # the same inline access_quiet transition as below.
                stop = i + pred_left
                if d_assoc == 4:
                    # 4-way L1D (the default geometry): the recency
                    # rotation is unrolled into element moves — no range
                    # object, no slice allocations — while remaining the
                    # exact access_quiet transition.  A thrashing block
                    # rotates or evicts on nearly every access, so this
                    # is the hottest store sequence of the whole mode.
                    while i < stop:
                        if strided0:
                            a = (b0 + (k * x0) % sp0) ^ salt
                        else:
                            h = ((k + x0) * 2654435761) & 0xFFFFFFFF
                            h ^= h >> 16
                            h = (h * 0x45D9F3B) & 0xFFFFFFFF
                            h ^= h >> 16
                            a = (b0 + ((h % sp0) & -8)) ^ salt
                        l1d_n += 1
                        code = 0
                        line = a >> d_shift
                        b = (line & d_mask if d_pow2 else line % d_nsets) * 4
                        if d_tags[b] == line:
                            if w0:
                                d_dirty[b] = True
                            l1d_h += 1
                        elif d_tags[b + 1] == line:
                            dd = d_dirty[b + 1]
                            d_tags[b + 1] = d_tags[b]
                            d_tags[b] = line
                            d_dirty[b + 1] = d_dirty[b]
                            d_dirty[b] = dd or w0
                            l1d_h += 1
                        elif d_tags[b + 2] == line:
                            dd = d_dirty[b + 2]
                            d_tags[b + 2] = d_tags[b + 1]
                            d_tags[b + 1] = d_tags[b]
                            d_tags[b] = line
                            d_dirty[b + 2] = d_dirty[b + 1]
                            d_dirty[b + 1] = d_dirty[b]
                            d_dirty[b] = dd or w0
                            l1d_h += 1
                        elif d_tags[b + 3] == line:
                            dd = d_dirty[b + 3]
                            d_tags[b + 3] = d_tags[b + 2]
                            d_tags[b + 2] = d_tags[b + 1]
                            d_tags[b + 1] = d_tags[b]
                            d_tags[b] = line
                            d_dirty[b + 3] = d_dirty[b + 2]
                            d_dirty[b + 2] = d_dirty[b + 1]
                            d_dirty[b + 1] = d_dirty[b]
                            d_dirty[b] = dd or w0
                            l1d_h += 1
                        else:
                            if d_dirty[b + 3] and d_tags[b + 3] != -1:
                                d_wb += 1
                            d_tags[b + 3] = d_tags[b + 2]
                            d_tags[b + 2] = d_tags[b + 1]
                            d_tags[b + 1] = d_tags[b]
                            d_tags[b] = line
                            d_dirty[b + 3] = d_dirty[b + 2]
                            d_dirty[b + 2] = d_dirty[b + 1]
                            d_dirty[b + 1] = d_dirty[b]
                            d_dirty[b] = w0
                            l2_n += 1
                            line = a >> u_shift
                            b = (
                                line & u_mask if u_pow2 else line % u_nsets
                            ) * u_assoc
                            if u_tags[b] == line:
                                if w0:
                                    u_dirty[b] = True
                                l2_h += 1
                                code = 1
                            else:
                                bend = b + u_assoc
                                for j in range(b + 1, bend):
                                    if u_tags[j] == line:
                                        dd = u_dirty[j]
                                        u_tags[b + 1 : j + 1] = u_tags[b:j]
                                        u_dirty[b + 1 : j + 1] = u_dirty[b:j]
                                        u_tags[b] = line
                                        u_dirty[b] = dd or w0
                                        l2_h += 1
                                        code = 1
                                        break
                                else:
                                    if (
                                        u_dirty[bend - 1]
                                        and u_tags[bend - 1] != -1
                                    ):
                                        u_wb += 1
                                    u_tags[b + 1 : bend] = u_tags[b : bend - 1]
                                    u_dirty[b + 1 : bend] = u_dirty[
                                        b : bend - 1
                                    ]
                                    u_tags[b] = line
                                    u_dirty[b] = w0
                                    mem_extra += 1
                                    code = 2
                        t = chain_get((sid << 6) | 32 | code)
                        if t is None:
                            break
                        cycle += t[0]
                        sid = t[1]
                        pending = t[2]
                        i += 1
                        k += 1
                else:
                    while i < stop:
                        if strided0:
                            a = (b0 + (k * x0) % sp0) ^ salt
                        else:
                            h = ((k + x0) * 2654435761) & 0xFFFFFFFF
                            h ^= h >> 16
                            h = (h * 0x45D9F3B) & 0xFFFFFFFF
                            h ^= h >> 16
                            a = (b0 + ((h % sp0) & -8)) ^ salt
                        l1d_n += 1
                        code = 0
                        line = a >> d_shift
                        b = (line & d_mask if d_pow2 else line % d_nsets) * d_assoc
                        if d_tags[b] == line:
                            if w0:
                                d_dirty[b] = True
                            l1d_h += 1
                        else:
                            bend = b + d_assoc
                            for j in range(b + 1, bend):
                                if d_tags[j] == line:
                                    dd = d_dirty[j]
                                    d_tags[b + 1 : j + 1] = d_tags[b:j]
                                    d_dirty[b + 1 : j + 1] = d_dirty[b:j]
                                    d_tags[b] = line
                                    d_dirty[b] = dd or w0
                                    l1d_h += 1
                                    break
                            else:
                                if d_dirty[bend - 1] and d_tags[bend - 1] != -1:
                                    d_wb += 1
                                d_tags[b + 1 : bend] = d_tags[b : bend - 1]
                                d_dirty[b + 1 : bend] = d_dirty[b : bend - 1]
                                d_tags[b] = line
                                d_dirty[b] = w0
                                l2_n += 1
                                line = a >> u_shift
                                b = (
                                    line & u_mask if u_pow2 else line % u_nsets
                                ) * u_assoc
                                if u_tags[b] == line:
                                    if w0:
                                        u_dirty[b] = True
                                    l2_h += 1
                                    code = 1
                                else:
                                    bend = b + u_assoc
                                    for j in range(b + 1, bend):
                                        if u_tags[j] == line:
                                            dd = u_dirty[j]
                                            u_tags[b + 1 : j + 1] = u_tags[b:j]
                                            u_dirty[b + 1 : j + 1] = u_dirty[b:j]
                                            u_tags[b] = line
                                            u_dirty[b] = dd or w0
                                            l2_h += 1
                                            code = 1
                                            break
                                    else:
                                        if (
                                            u_dirty[bend - 1]
                                            and u_tags[bend - 1] != -1
                                        ):
                                            u_wb += 1
                                        u_tags[b + 1 : bend] = u_tags[
                                            b : bend - 1
                                        ]
                                        u_dirty[b + 1 : bend] = u_dirty[
                                            b : bend - 1
                                        ]
                                        u_tags[b] = line
                                        u_dirty[b] = w0
                                        mem_extra += 1
                                        code = 2
                        t = chain_get((sid << 6) | 32 | code)
                        if t is None:
                            break
                        cycle += t[0]
                        sid = t[1]
                        pending = t[2]
                        i += 1
                        k += 1
                pred_left = stop - i
                if i < stop:
                    # Unmemoized transition: finish this iteration through
                    # the real scoreboard and record it for next time.
                    lats = (hit_lats, l2_lats, mem_lats)[code]
                    pred_left -= 1
                    self.cycle = cycle
                    if pending is not None:
                        self._materialize(sid, pending, live_in, written, div_fus)
                        pending = None
                    self._issue_timing(block, lats, 0, True)
                    after = self.cycle
                    nsid = self._intern_context(bid, live_in, div_fus)
                    chain[(sid << 6) | 32 | code] = (
                        after - cycle,
                        nsid,
                        tuple(
                            [
                                (v - after) if (v := reg_ready[r]) > after else 0
                                for r in written
                            ]
                        ),
                    )
                    cycle = after
                    sid = nsid
                    i += 1
                    k += 1
                continue
            # Data side: inside a proven-silent span the latencies are the
            # L1 hit constant and no cache state moves; otherwise probe
            # for a new span, and failing that do the real accesses.
            if silent_left > 0:
                lats = hit_lats
                code = 0
                silent_left -= 1
            else:
                lats = None
                if never_silent or probe_skip:
                    probe_skip = False
                else:
                    lim = last_i - i + 1
                    if span_hint >= 0:
                        m = span_hint if span_hint < lim else lim
                        span_hint = -1
                    elif single:
                        if strided0:
                            m = span_strided(b0, x0, sp0, k, lim, w0, salt)
                        else:
                            m = span_hashed(f0, k, lim, w0, salt)
                    elif pair is not None:
                        m = pair_span(pr1, pr2, k, lim, salt)
                    elif joint is not None:
                        m = joint_span(joint, k, lim, salt)
                    else:
                        m = lim
                        for pat in probe_pats:
                            m = silent_span(pat, k, m)
                            if m == 0:
                                break
                    if m > 0:
                        l1d_n += m * n_pat
                        l1d_h += m * n_pat
                        # A span cut short (not by the run end) ended at a
                        # provably non-silent iteration — skip re-probing
                        # it and go straight to the real accesses.
                        probe_skip = m < lim
                        if m > 1 and takens is None and i <= uniform_until:
                            # Whole-span fast-forward: bulk-predict as much
                            # of the span as the predictor stays quiet for,
                            # then apply the precomputed chain unroll from
                            # this context in closed form.
                            cover = pred_left
                            if cover < m:
                                # Ask for the whole remaining uniform
                                # stretch at once — the surplus carries to
                                # the next span via pred_left, so a steady
                                # predictor is consulted once per run.
                                want = uniform_until - i + 1 - cover
                                if want > 0:
                                    cover += taken_streak(branch_address, want)
                            mm = m if m < cover else cover
                            if mm > 1:
                                path = paths_get(sid)
                                if path is None or (
                                    not path[4]
                                    and mm > len(path[2])
                                    and len(chain) != path[5]
                                ):
                                    np = self._build_path(
                                        sid, hit_lats, mm, int_keys
                                    )
                                    if np is not None:
                                        path = np
                                        paths[sid] = np
                                if path is not None:
                                    cums = path[0]
                                    pwrels = path[2]
                                    last = len(pwrels)
                                    if mm > last:
                                        if path[4]:
                                            # Past the fixed point: extend
                                            # the walk in closed form.
                                            cycle += (mm - last) * path[3]
                                        else:
                                            # Prefix only: apply what the
                                            # chain knows, trickle the rest
                                            # (memoizing missing steps).
                                            mm = last
                                    cycle += cums[mm if mm < last else last]
                                    sid = path[1][mm if mm < last else last]
                                    pending = pwrels[
                                        (mm if mm < last else last) - 1
                                    ]
                                    pred_left = cover - mm
                                    silent_left = m - mm
                                    i += mm
                                    k += mm
                                    continue
                            # Streak already applied; the per-iteration
                            # branch side below consumes it via pred_left.
                            pred_left = cover
                        lats = hit_lats
                        code = 0
                        silent_left = m - 1
                if lats is None:
                    if single:
                        l1d_n += 1
                        if strided0:
                            off = (k * x0) % sp0
                            a = (b0 + off) ^ salt
                        else:
                            h = ((k + x0) * 2654435761) & 0xFFFFFFFF
                            h ^= h >> 16
                            h = (h * 0x45D9F3B) & 0xFFFFFFFF
                            h ^= h >> 16
                            a = (b0 + ((h % sp0) & -8)) ^ salt
                        # Inlined Cache.access_quiet on the L1D, falling
                        # through to the L2 on a miss — byte-for-byte the
                        # same state transition as the method calls.
                        line = a >> d_shift
                        b = (line & d_mask if d_pow2 else line % d_nsets) * d_assoc
                        if d_tags[b] == line:
                            if w0:
                                d_dirty[b] = True
                            l1d_h += 1
                            lats = hit_lats
                            code = 0
                        else:
                            bend = b + d_assoc
                            for j in range(b + 1, bend):
                                if d_tags[j] == line:
                                    dd = d_dirty[j]
                                    d_tags[b + 1 : j + 1] = d_tags[b:j]
                                    d_dirty[b + 1 : j + 1] = d_dirty[b:j]
                                    d_tags[b] = line
                                    d_dirty[b] = dd or w0
                                    l1d_h += 1
                                    lats = hit_lats
                                    code = 0
                                    break
                            else:
                                if d_dirty[bend - 1] and d_tags[bend - 1] != -1:
                                    d_wb += 1
                                d_tags[b + 1 : bend] = d_tags[b : bend - 1]
                                d_dirty[b + 1 : bend] = d_dirty[b : bend - 1]
                                d_tags[b] = line
                                d_dirty[b] = w0
                                if strided0:
                                    # The fill just placed this line at MRU
                                    # (dirty when writing), so the rest of
                                    # its line group is silent by
                                    # construction — no probe needed.
                                    g = ((off | line_mask) - off) // x0
                                    gw = (sp0 - off + x0 - 1) // x0 - 1
                                    if gw < g:
                                        g = gw
                                    if g > 0:
                                        span_hint = g
                                l2_n += 1
                                line = a >> u_shift
                                b = (
                                    line & u_mask if u_pow2 else line % u_nsets
                                ) * u_assoc
                                if u_tags[b] == line:
                                    if w0:
                                        u_dirty[b] = True
                                    l2_h += 1
                                    lats = l2_lats
                                    code = 1
                                else:
                                    bend = b + u_assoc
                                    for j in range(b + 1, bend):
                                        if u_tags[j] == line:
                                            dd = u_dirty[j]
                                            u_tags[b + 1 : j + 1] = u_tags[b:j]
                                            u_dirty[b + 1 : j + 1] = u_dirty[b:j]
                                            u_tags[b] = line
                                            u_dirty[b] = dd or w0
                                            l2_h += 1
                                            lats = l2_lats
                                            code = 1
                                            break
                                    else:
                                        if (
                                            u_dirty[bend - 1]
                                            and u_tags[bend - 1] != -1
                                        ):
                                            u_wb += 1
                                        u_tags[b + 1 : bend] = u_tags[b : bend - 1]
                                        u_dirty[b + 1 : bend] = u_dirty[
                                            b : bend - 1
                                        ]
                                        u_tags[b] = line
                                        u_dirty[b] = w0
                                        mem_extra += 1
                                        lats = mem_lats
                                        code = 2
                    elif pair2:
                        # Two-access blocks: both accesses inline (same
                        # transition as Cache.access_quiet), the latency
                        # pair looked up by base-3 level code.
                        code = 0
                        for st, bb, xx, spn, w in pinfo:
                            if st:
                                a = (bb + (k * xx) % spn) ^ salt
                            else:
                                h = ((k + xx) * 2654435761) & 0xFFFFFFFF
                                h ^= h >> 16
                                h = (h * 0x45D9F3B) & 0xFFFFFFFF
                                h ^= h >> 16
                                a = (bb + ((h % spn) & -8)) ^ salt
                            l1d_n += 1
                            c = 0
                            line = a >> d_shift
                            b = (
                                line & d_mask if d_pow2 else line % d_nsets
                            ) * d_assoc
                            if d_tags[b] == line:
                                if w:
                                    d_dirty[b] = True
                                l1d_h += 1
                            else:
                                bend = b + d_assoc
                                for j in range(b + 1, bend):
                                    if d_tags[j] == line:
                                        dd = d_dirty[j]
                                        d_tags[b + 1 : j + 1] = d_tags[b:j]
                                        d_dirty[b + 1 : j + 1] = d_dirty[b:j]
                                        d_tags[b] = line
                                        d_dirty[b] = dd or w
                                        l1d_h += 1
                                        break
                                else:
                                    if (
                                        d_dirty[bend - 1]
                                        and d_tags[bend - 1] != -1
                                    ):
                                        d_wb += 1
                                    d_tags[b + 1 : bend] = d_tags[b : bend - 1]
                                    d_dirty[b + 1 : bend] = d_dirty[
                                        b : bend - 1
                                    ]
                                    d_tags[b] = line
                                    d_dirty[b] = w
                                    l2_n += 1
                                    line = a >> u_shift
                                    b = (
                                        line & u_mask
                                        if u_pow2
                                        else line % u_nsets
                                    ) * u_assoc
                                    if u_tags[b] == line:
                                        if w:
                                            u_dirty[b] = True
                                        l2_h += 1
                                        c = 1
                                    else:
                                        bend = b + u_assoc
                                        for j in range(b + 1, bend):
                                            if u_tags[j] == line:
                                                dd = u_dirty[j]
                                                u_tags[b + 1 : j + 1] = u_tags[
                                                    b:j
                                                ]
                                                u_dirty[b + 1 : j + 1] = (
                                                    u_dirty[b:j]
                                                )
                                                u_tags[b] = line
                                                u_dirty[b] = dd or w
                                                l2_h += 1
                                                c = 1
                                                break
                                        else:
                                            if (
                                                u_dirty[bend - 1]
                                                and u_tags[bend - 1] != -1
                                            ):
                                                u_wb += 1
                                            u_tags[b + 1 : bend] = u_tags[
                                                b : bend - 1
                                            ]
                                            u_dirty[b + 1 : bend] = u_dirty[
                                                b : bend - 1
                                            ]
                                            u_tags[b] = line
                                            u_dirty[b] = w
                                            mem_extra += 1
                                            c = 2
                            code = code * 3 + c
                        lats = lat_pairs[code]
                    else:
                        buf = []
                        for st, bb, xx, spn, w in pinfo:
                            if st:
                                a = (bb + (k * xx) % spn) ^ salt
                            else:
                                h = ((k + xx) * 2654435761) & 0xFFFFFFFF
                                h ^= h >> 16
                                h = (h * 0x45D9F3B) & 0xFFFFFFFF
                                h ^= h >> 16
                                a = (bb + ((h % spn) & -8)) ^ salt
                            l1d_n += 1
                            if l1d_access(a, w):
                                l1d_h += 1
                                buf.append(l1_hit)
                            else:
                                l2_n += 1
                                if l2_access(a, w):
                                    l2_h += 1
                                    buf.append(l2_lat)
                                else:
                                    mem_extra += 1
                                    buf.append(mem_lat)
                        lats = tuple(buf)

            # Branch side: the uniformly-taken middle is applied through
            # the predictor's bulk fast path — every bulk-applied step is
            # byte-identical to a real predict_update(addr, True).
            if pred_left > 0:
                correct = True
                pred_left -= 1
            elif takens is None and i <= uniform_until:
                streak = taken_streak(branch_address, uniform_until - i + 1)
                if streak:
                    pred_left = streak - 1
                    correct = True
                else:
                    correct = predict_update(branch_address, True)
            else:
                taken = i <= uniform_until if takens is None else takens[i]
                correct = predict_update(branch_address, taken)

            # Timing side: walk the memoized transition if known.
            if int_keys:
                ckey = (sid << 6) | (32 if correct else 0) | code
            else:
                ckey = (sid, correct) + lats
            t = chain_get(ckey)
            if t is not None:
                cycle += t[0]
                nsid = t[1]
                pending = t[2]
                if nsid == sid and silent_left > 0 and pred_left > 0:
                    # Fixed point with constant inputs: every further
                    # iteration of the silent + predictor-bulk span
                    # repeats this transition.  Apply it in closed form.
                    mm = silent_left if silent_left < pred_left else pred_left
                    cycle += mm * t[0]
                    silent_left -= mm
                    pred_left -= mm
                    i += mm
                    k += mm
                sid = nsid
            else:
                self.cycle = cycle
                if pending is not None:
                    self._materialize(sid, pending, live_in, written, div_fus)
                    pending = None
                self._issue_timing(block, lats, 0, correct)
                after = self.cycle
                nsid = self._intern_context(bid, live_in, div_fus)
                chain[ckey] = (
                    after - cycle,
                    nsid,
                    tuple(
                        [
                            (v - after) if (v := reg_ready[r]) > after else 0
                            for r in written
                        ]
                    ),
                )
                cycle = after
                sid = nsid
            i += 1
            k += 1

        self.cycle = cycle
        if pending is not None:
            self._materialize(sid, pending, live_in, written, div_fus)
        if mem_extra:
            hierarchy.memory_accesses += mem_extra
        if l1d_n:
            l1d_stats = l1d.stats
            l1d_stats.accesses += l1d_n
            l1d_stats.hits += l1d_h
        if d_wb:
            l1d.stats.writebacks += d_wb
        if l2_n:
            l2_stats = hierarchy.l2.stats
            l2_stats.accesses += l2_n
            l2_stats.hits += l2_h
        if u_wb:
            hierarchy.l2.stats.writebacks += u_wb
        # Iteration 0 fetched for real (hits counted above); iterations
        # 1..n-1 fetched every instruction line from warm, MRU-resident
        # L1I sets: pure hits, applied arithmetically.
        l1i_stats = hierarchy.l1i.stats
        l1i_stats.accesses += n * n_lines
        l1i_stats.hits += last_i * n_lines + l1i_h0

    def run_window(self, events: List[BlockEvent]) -> WindowResult:
        """Execute a list of events and report ops/cycles for the window."""
        start = self.cycle
        ops = 0
        for event in events:
            self.execute_event(event)
            ops += event.block.n_ops
        # The final instructions issue at self.cycle; they complete a cycle
        # later at minimum.
        return WindowResult(ops=ops, cycles=self.cycle - start + 1)

"""The in-order 4-wide scoreboard pipeline (detailed timing model).

Timing semantics, per instruction, in program order:

* an instruction issues at the earliest cycle that satisfies (a) program
  order, (b) source operands ready, (c) an issue slot free this cycle within
  the machine width, (d) a functional-unit slot free for its class,
  (e) instruction fetch not stalled (I-cache miss or branch redirect);
* loads pay the full cache-hierarchy latency before their destination is
  ready; stores retire through a store buffer (no dependent latency);
* divides occupy their unpipelined unit until completion;
* a mispredicted branch stalls fetch for the machine's redirect penalty.

Register ready-times are absolute cycle numbers that persist across sample
windows; the detailed warm-up window preceding each measured sample (the
SMARTS/PGSS methodology) is what re-establishes them after a long
fast-forward, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..branch import BranchPredictor
from ..config import MachineConfig
from ..isa import FU_CLASS, FU_LIMITS, N_REGS, Op
from ..isa.instructions import FuClass
from ..memory import CacheHierarchy
from ..program.stream import BlockEvent

__all__ = ["InOrderPipeline", "WindowResult"]

_OP_LOAD = int(Op.LOAD)
_OP_STORE = int(Op.STORE)
_OP_BRANCH = int(Op.BRANCH)
_OP_IDIV = int(Op.IDIV)
_OP_FDIV = int(Op.FDIV)

_FU_OF_OP: List[int] = [int(FU_CLASS[Op(i)]) for i in range(len(Op))]
_N_FU = len(FuClass)


@dataclass(frozen=True)
class WindowResult:
    """Timing outcome of one detailed window.

    Attributes:
        ops: operations executed.
        cycles: cycles elapsed.
    """

    ops: int
    cycles: int

    @property
    def ipc(self) -> float:
        """Instructions per cycle over the window (0.0 for empty windows)."""
        return self.ops / self.cycles if self.cycles else 0.0


class InOrderPipeline:
    """Cycle-accurate in-order superscalar timing model.

    Args:
        machine: machine configuration (width, penalties).
        hierarchy: the cache hierarchy shared with the functional modes.
        predictor: the branch predictor shared with the functional modes.
    """

    def __init__(
        self,
        machine: MachineConfig,
        hierarchy: CacheHierarchy,
        predictor: BranchPredictor,
    ) -> None:
        self.machine = machine
        self.hierarchy = hierarchy
        self.predictor = predictor
        self.cycle = 0
        self._reg_ready: List[int] = [0] * N_REGS
        self._fu_busy: List[int] = [0] * _N_FU  # unpipelined-unit next-free
        self._fetch_ready = 0
        self._width_used = 0
        self._class_used: List[int] = [0] * _N_FU
        self._l1i_hit_latency = hierarchy.l1i.hit_latency
        self._l1d_hit_latency = hierarchy.l1d.hit_latency
        #: Completion cycles of in-flight L1 misses (bounded by n_mshrs).
        self._mshrs: List[int] = []

    def reset_timing(self) -> None:
        """Clear all timing state (cycle counter, scoreboards, stalls)."""
        self.cycle = 0
        self._reg_ready = [0] * N_REGS
        self._fu_busy = [0] * _N_FU
        self._fetch_ready = 0
        self._width_used = 0
        self._class_used = [0] * _N_FU
        self._mshrs = []

    def execute_event(self, event: BlockEvent) -> None:
        """Run one dynamic basic-block execution through the pipeline."""
        block, taken, k = event
        hierarchy = self.hierarchy
        reg_ready = self._reg_ready
        fu_busy = self._fu_busy
        class_used = self._class_used
        width = self.machine.issue_width
        limits = _FU_LIMIT_LIST
        cycle = self.cycle
        width_used = self._width_used
        fetch_ready = self._fetch_ready
        mshrs = self._mshrs
        n_mshrs = self.machine.n_mshrs
        l1d_hit = self._l1d_hit_latency

        # Instruction fetch: any I-cache miss stalls the front end for the
        # cycles beyond the pipelined L1 hit time.
        for line in block.inst_lines:
            lat = hierarchy.inst_latency(line)
            extra = lat - self._l1i_hit_latency
            if extra > 0:
                if fetch_ready < cycle:
                    fetch_ready = cycle
                fetch_ready += extra

        ops = block.ops
        dsts = block.dsts
        src1s = block.src1s
        src2s = block.src2s
        lats = block.lats
        mem_idx = block.mem_idx
        patterns = block.mem_patterns

        for i in range(block.n_ops):
            op = ops[i]
            # Earliest cycle satisfying dependences, order, and fetch.
            t = cycle
            s = src1s[i]
            if s > 0 and reg_ready[s] > t:
                t = reg_ready[s]
            s = src2s[i]
            if s > 0 and reg_ready[s] > t:
                t = reg_ready[s]
            if fetch_ready > t:
                t = fetch_ready
            fu = _FU_OF_OP[op]
            if op == _OP_IDIV or op == _OP_FDIV:
                if fu_busy[fu] > t:
                    t = fu_busy[fu]
            if t > cycle:
                cycle = t
                width_used = 0
                class_used[0] = 0
                class_used[1] = 0
                class_used[2] = 0
                class_used[3] = 0
            # Structural hazards: machine width and per-class slots.
            while width_used >= width or class_used[fu] >= limits[fu]:
                cycle += 1
                width_used = 0
                class_used[0] = 0
                class_used[1] = 0
                class_used[2] = 0
                class_used[3] = 0
            width_used += 1
            class_used[fu] += 1

            if op == _OP_LOAD or op == _OP_STORE:
                pat = patterns[mem_idx[i]]
                is_store = op == _OP_STORE
                lat = hierarchy.data_latency(pat.address(k), is_store)
                if lat > l1d_hit:
                    # L1 miss: needs a free miss-status register; a full
                    # MSHR file stalls the in-order pipe until one drains.
                    j = 0
                    while j < len(mshrs):
                        if mshrs[j] <= cycle:
                            mshrs.pop(j)
                        else:
                            j += 1
                    if len(mshrs) >= n_mshrs:
                        earliest = min(mshrs)
                        mshrs.remove(earliest)
                        if earliest > cycle:
                            cycle = earliest
                            width_used = 0
                            class_used[0] = 0
                            class_used[1] = 0
                            class_used[2] = 0
                            class_used[3] = 0
                    mshrs.append(cycle + lat)
                if not is_store:
                    d = dsts[i]
                    if d > 0:
                        reg_ready[d] = cycle + lat
            elif op == _OP_BRANCH:
                correct = self.predictor.predict_update(block.branch_address, taken)
                if not correct:
                    stall = cycle + self.machine.mispredict_penalty
                    if stall > fetch_ready:
                        fetch_ready = stall
            else:
                lat = lats[i]
                d = dsts[i]
                if d > 0:
                    reg_ready[d] = cycle + lat
                if op == _OP_IDIV or op == _OP_FDIV:
                    fu_busy[fu] = cycle + lat

        self.cycle = cycle
        self._width_used = width_used
        self._fetch_ready = fetch_ready

    def run_window(self, events: List[BlockEvent]) -> WindowResult:
        """Execute a list of events and report ops/cycles for the window."""
        start = self.cycle
        ops = 0
        for event in events:
            self.execute_event(event)
            ops += event.block.n_ops
        # The final instructions issue at self.cycle; they complete a cycle
        # later at minimum.
        return WindowResult(ops=ops, cycles=self.cycle - start + 1)


#: Per-class issue limits as a list indexed by FuClass value.
_FU_LIMIT_LIST: List[int] = [FU_LIMITS[FuClass(i)] for i in range(_N_FU)]

"""Checkpoint / livepoint support (paper Sections 2.2 and 7).

TurboSMARTS relies on *livepoints* — small stored warm-state snapshots that
let samples be simulated in any order.  The paper's future-work section
notes "the livepoints used in [15] could easily be used to accelerate
PGSS"; :class:`CheckpointStore` implements exactly that: snapshots of the
engine (stream position + caches + predictor) taken at chosen op offsets,
restorable in any order.

:class:`CheckpointFile` persists one such snapshot (plus arbitrary
caller extras) to disk with the same atomic write-to-tmp +
``os.replace`` discipline as the result cache, which is what makes long
detailed cells resumable across worker deaths in the experiment fleet
(DESIGN.md §17): the claim holder saves periodically, and whichever
worker next claims the cell restores the latest snapshot instead of
re-simulating from op 0.
"""

from __future__ import annotations

import os
import pickle
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..errors import SimulationError
from .engine import Mode, SimulationEngine

__all__ = ["Checkpoint", "CheckpointFile", "CheckpointStore"]

#: Pickle protocol pinned for checkpoint files (protocol 4 is supported
#: by every Python this package targets, so mixed-version fleets can
#: read each other's checkpoints).
_PICKLE_PROTOCOL = 4


@dataclass(frozen=True)
class Checkpoint:
    """One stored warm-state snapshot.

    Attributes:
        op_offset: dynamic op count at which the snapshot was taken.
        state: opaque engine state (see ``SimulationEngine.snapshot``).
    """

    op_offset: int
    state: Dict[str, Any]


class CheckpointStore:
    """An ordered collection of engine checkpoints.

    Build one with :meth:`collect`, then jump the engine to any stored
    offset with :meth:`restore_nearest` — the engine lands on the snapshot
    at or before the requested offset and only the remainder needs
    re-simulation.
    """

    def __init__(self) -> None:
        self._checkpoints: List[Checkpoint] = []

    def __len__(self) -> int:
        return len(self._checkpoints)

    @property
    def offsets(self) -> List[int]:
        """Stored op offsets, ascending."""
        return [c.op_offset for c in self._checkpoints]

    def add(self, engine: SimulationEngine) -> Checkpoint:
        """Snapshot *engine* now and store it."""
        cp = Checkpoint(op_offset=engine.ops_completed, state=engine.snapshot())
        if self._checkpoints and cp.op_offset <= self._checkpoints[-1].op_offset:
            raise SimulationError("checkpoints must be added at increasing offsets")
        self._checkpoints.append(cp)
        return cp

    @classmethod
    def collect(
        cls,
        engine: SimulationEngine,
        interval_ops: int,
        mode: Mode = Mode.FUNC_WARM,
    ) -> "CheckpointStore":
        """Run *engine* to completion, snapshotting every *interval_ops*.

        The engine runs in *mode* (functional warming by default, so each
        checkpoint holds warm caches — a livepoint).
        """
        if interval_ops <= 0:
            raise SimulationError("interval_ops must be positive")
        store = cls()
        store.add(engine)
        while not engine.exhausted:
            engine.run(mode, interval_ops)
            if not engine.exhausted:
                store.add(engine)
        return store

    def restore_nearest(self, engine: SimulationEngine, op_offset: int) -> Checkpoint:
        """Restore the latest checkpoint at or before *op_offset*.

        Returns the checkpoint used.  Raises if none qualifies.
        """
        candidate = None
        for cp in self._checkpoints:
            if cp.op_offset <= op_offset:
                candidate = cp
            else:
                break
        if candidate is None:
            raise SimulationError(
                f"no checkpoint at or before op offset {op_offset}"
            )
        engine.restore(candidate.state)
        return candidate


class CheckpointFile:
    """Atomic on-disk persistence for one resumable computation.

    Holds at most one checkpoint — the latest — because a resumable
    sequential computation only ever restarts from its newest snapshot.
    Publication is write-to-unique-tmp + ``os.replace``, so a reader
    (including a worker that claims the cell after this one died) only
    ever observes the previous complete snapshot or the new one, never a
    torn file.  An unreadable file (killed mid-``os.replace`` on a
    non-atomic filesystem, bad blocks) is deleted and treated as absent:
    the computation restarts from op 0, which is slower but still
    byte-identical.
    """

    def __init__(self, path: Path) -> None:
        self.path = Path(path)

    def load(self) -> Optional[Dict[str, Any]]:
        """The stored payload (``op_offset`` / ``state`` / ``extras``).

        Returns ``None`` when no usable checkpoint exists.
        """
        if not self.path.exists():
            return None
        try:
            with self.path.open("rb") as fh:
                payload = pickle.load(fh)
            if not isinstance(payload, dict) or "state" not in payload:
                raise SimulationError("malformed checkpoint payload")
        except Exception:
            # A corrupt checkpoint must not wedge the cell forever; the
            # run restarts from the beginning instead.
            self.clear()
            return None
        return payload

    def save(
        self,
        op_offset: int,
        state: Dict[str, Any],
        extras: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Persist a snapshot taken at *op_offset*, replacing any prior one."""
        payload = {
            "op_offset": int(op_offset),
            "state": state,
            "extras": dict(extras or {}),
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(
            f"{self.path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
        )
        try:
            with tmp.open("wb") as fh:
                pickle.dump(payload, fh, protocol=_PICKLE_PROTOCOL)
            os.replace(tmp, self.path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass

    def clear(self) -> None:
        """Delete the stored checkpoint (after the computation completes)."""
        try:
            self.path.unlink()
        except OSError:
            pass

"""Checkpoint / livepoint support (paper Sections 2.2 and 7).

TurboSMARTS relies on *livepoints* — small stored warm-state snapshots that
let samples be simulated in any order.  The paper's future-work section
notes "the livepoints used in [15] could easily be used to accelerate
PGSS"; :class:`CheckpointStore` implements exactly that: snapshots of the
engine (stream position + caches + predictor) taken at chosen op offsets,
restorable in any order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from ..errors import SimulationError
from .engine import Mode, SimulationEngine

__all__ = ["Checkpoint", "CheckpointStore"]


@dataclass(frozen=True)
class Checkpoint:
    """One stored warm-state snapshot.

    Attributes:
        op_offset: dynamic op count at which the snapshot was taken.
        state: opaque engine state (see ``SimulationEngine.snapshot``).
    """

    op_offset: int
    state: Dict[str, Any]


class CheckpointStore:
    """An ordered collection of engine checkpoints.

    Build one with :meth:`collect`, then jump the engine to any stored
    offset with :meth:`restore_nearest` — the engine lands on the snapshot
    at or before the requested offset and only the remainder needs
    re-simulation.
    """

    def __init__(self) -> None:
        self._checkpoints: List[Checkpoint] = []

    def __len__(self) -> int:
        return len(self._checkpoints)

    @property
    def offsets(self) -> List[int]:
        """Stored op offsets, ascending."""
        return [c.op_offset for c in self._checkpoints]

    def add(self, engine: SimulationEngine) -> Checkpoint:
        """Snapshot *engine* now and store it."""
        cp = Checkpoint(op_offset=engine.ops_completed, state=engine.snapshot())
        if self._checkpoints and cp.op_offset <= self._checkpoints[-1].op_offset:
            raise SimulationError("checkpoints must be added at increasing offsets")
        self._checkpoints.append(cp)
        return cp

    @classmethod
    def collect(
        cls,
        engine: SimulationEngine,
        interval_ops: int,
        mode: Mode = Mode.FUNC_WARM,
    ) -> "CheckpointStore":
        """Run *engine* to completion, snapshotting every *interval_ops*.

        The engine runs in *mode* (functional warming by default, so each
        checkpoint holds warm caches — a livepoint).
        """
        if interval_ops <= 0:
            raise SimulationError("interval_ops must be positive")
        store = cls()
        store.add(engine)
        while not engine.exhausted:
            engine.run(mode, interval_ops)
            if not engine.exhausted:
                store.add(engine)
        return store

    def restore_nearest(self, engine: SimulationEngine, op_offset: int) -> Checkpoint:
        """Restore the latest checkpoint at or before *op_offset*.

        Returns the checkpoint used.  Raises if none qualifies.
        """
        candidate = None
        for cp in self._checkpoints:
            if cp.op_offset <= op_offset:
                candidate = cp
            else:
                break
        if candidate is None:
            raise SimulationError(
                f"no checkpoint at or before op offset {op_offset}"
            )
        engine.restore(candidate.state)
        return candidate

"""Chip-multiprocessor extension (paper Section 7 future work).

The paper's evaluation machine "is meant to be roughly representative of a
single core on a modern chip multiprocessor (CMP) system" and its future
work says "Work is ongoing to extend PGSS to multithreaded and multicore
processors."  This module provides that extension: N cores, each with
private L1 caches, branch predictor, pipeline and program, sharing one L2.

Timing model: cores are loosely coupled.  Each core's pipeline keeps its
own cycle clock; the scheduler advances cores round-robin in small op
slices so their L2 accesses interleave — capturing the first-order CMP
effect (shared-L2 capacity/conflict interference) without modelling bus
bandwidth or coherence traffic.  The approximation is documented in
DESIGN.md and is conservative for the sampling questions studied here:
what matters to PGSS is that each core's IPC shifts when co-runners
pollute the shared cache, which this model produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

if TYPE_CHECKING:
    from ..sampling.pgss import PgssConfig

from ..signals import BbvTracker, ReducedBbvHash
from ..config import DEFAULT_MACHINE, MachineConfig
from ..errors import ConfigurationError
from ..memory import CacheHierarchy
from ..memory.cache import Cache
from ..program import Program
from .engine import Mode, SimulationEngine

__all__ = ["MultiCoreEngine", "MultiCorePgss", "CoreResult"]


@dataclass
class CoreResult:
    """Per-core outcome of a multicore run.

    Attributes:
        core: core index.
        program: workload the core ran.
        ops: operations retired.
        cycles: cycles elapsed on that core's clock.
    """

    core: int
    program: str
    ops: int
    cycles: int

    @property
    def ipc(self) -> float:
        """The core's IPC (0.0 when idle)."""
        return self.ops / self.cycles if self.cycles else 0.0


class MultiCoreEngine:
    """N single-threaded cores sharing one L2 cache.

    Args:
        programs: one workload per core.
        machine: per-core configuration (the shared L2 uses its ``l2``
            geometry).
        slice_ops: how many ops a core advances before yielding to the
            next — the interleaving grain of shared-L2 accesses.
        with_bbv: attach a BBV tracker to every core (needed for PGSS).
    """

    def __init__(
        self,
        programs: Sequence[Program],
        machine: MachineConfig = DEFAULT_MACHINE,
        slice_ops: int = 2_000,
        with_bbv: bool = False,
    ) -> None:
        if not programs:
            raise ConfigurationError("at least one core/program is required")
        if slice_ops <= 0:
            raise ConfigurationError("slice_ops must be positive")
        self.machine = machine
        self.slice_ops = slice_ops
        self.shared_l2 = Cache(machine.l2, "sharedL2")
        self.engines: List[SimulationEngine] = []
        for core, program in enumerate(programs):
            # Distinct per-core address spaces (the salt models physical
            # page disjointness; without it identical generators would
            # constructively share L2 lines).
            hierarchy = CacheHierarchy(
                machine, shared_l2=self.shared_l2, address_salt=core << 36
            )
            tracker = (
                BbvTracker(ReducedBbvHash(seed=12345 + core)) if with_bbv else None
            )
            self.engines.append(
                SimulationEngine(
                    program,
                    machine=machine,
                    bbv_tracker=tracker,
                    hierarchy=hierarchy,
                )
            )

    @property
    def n_cores(self) -> int:
        """Number of cores."""
        return len(self.engines)

    @property
    def all_exhausted(self) -> bool:
        """True once every core's program has completed."""
        return all(engine.exhausted for engine in self.engines)

    def run_all(self, mode: Mode = Mode.DETAIL) -> List[CoreResult]:
        """Run every core to completion in *mode*, interleaved round-robin.

        Returns one :class:`CoreResult` per core.  Cores that finish early
        simply drop out of the rotation (no idle-cycle modelling).
        """
        ops = [0] * self.n_cores
        cycles = [0] * self.n_cores
        live = set(range(self.n_cores))
        while live:
            for core in sorted(live):
                engine = self.engines[core]
                result = engine.run(mode, self.slice_ops)
                ops[core] += result.ops
                cycles[core] += result.cycles
                if engine.exhausted:
                    live.discard(core)
        return [
            CoreResult(
                core=i,
                program=self.engines[i].program.name,
                ops=ops[i],
                cycles=cycles[i],
            )
            for i in range(self.n_cores)
        ]


class MultiCorePgss:
    """PGSS-Sim applied per core on a shared-L2 CMP.

    Each core runs its own Fig.-5 loop (own BBV tracker, classifier, and
    sample budget) while the scheduler interleaves the cores' execution so
    shared-L2 interference shapes what each core's samples observe.

    Args:
        config_factory: callable mapping a core index to its
            :class:`~repro.sampling.PgssConfig` (pass a single shared
            config with ``lambda core: config``).
        machine: per-core machine configuration.
    """

    def __init__(
        self,
        config_factory: Callable[[int], "PgssConfig"],
        machine: MachineConfig = DEFAULT_MACHINE,
    ) -> None:
        self.config_factory = config_factory
        self.machine = machine

    def run(self, programs: Sequence[Program]) -> Dict[int, object]:
        """Run PGSS on every core; returns core index -> SamplingResult."""
        from ..sampling.pgss import PgssController

        mc = MultiCoreEngine(programs, machine=self.machine, with_bbv=True)
        controllers = [
            PgssController(engine, self.config_factory(core))
            for core, engine in enumerate(mc.engines)
        ]
        live = set(range(mc.n_cores))
        while live:
            # One Fig.-5 iteration per core per rotation: each iteration
            # spans one BBV period, so cores advance at comparable rates
            # and their shared-L2 traffic interleaves at period grain.
            for core in sorted(live):
                if not controllers[core].step():
                    live.discard(core)
        return {core: controllers[core].result() for core in range(mc.n_cores)}

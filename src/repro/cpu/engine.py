"""The simulation engine: one program stream, four execution modes.

:class:`SimulationEngine` owns the machine state (cache hierarchy, branch
predictor, pipeline scoreboard) and a :class:`~repro.program.ProgramStream`,
and advances the stream in whichever :class:`Mode` the driving sampling
technique requests.  It also keeps per-mode operation counts and wall-clock
timers — the raw data behind the paper's Figure 13 simulation-rate table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sampling.session import ModeSegment

from ..branch import BimodalPredictor, BranchPredictor, GsharePredictor
from ..config import DEFAULT_MACHINE, MachineConfig
from ..errors import ConfigurationError, SimulationError
from ..memory import CacheHierarchy
from ..program import Program, ProgramStream
from .functional import FunctionalWarmer
from .pipeline import InOrderPipeline

__all__ = ["Mode", "ModeRun", "ModeAccounting", "SimulationEngine"]


class Mode(Enum):
    """Execution modes, mirroring the paper's Figure 13 taxonomy."""

    DETAIL = "detail"            # cycle-accurate, statistics recorded
    DETAIL_WARM = "detail_warm"  # cycle-accurate, statistics discarded
    FUNC_WARM = "func_warm"      # caches + branch predictor only
    FUNC_FAST = "func_fast"      # op counting only

    @property
    def is_detailed(self) -> bool:
        """True for the two cycle-accurate modes (they cost detailed ops)."""
        return self in (Mode.DETAIL, Mode.DETAIL_WARM)


@dataclass(frozen=True)
class ModeRun:
    """Outcome of one :meth:`SimulationEngine.run` call.

    Attributes:
        mode: the mode executed.
        ops: operations consumed (0 if the stream was already exhausted).
        cycles: cycles elapsed (0 for functional modes).
        exhausted: True when the stream ended during the run.
    """

    mode: Mode
    ops: int
    cycles: int
    exhausted: bool

    @property
    def ipc(self) -> float:
        """Instructions per cycle (0.0 when no cycles elapsed)."""
        return self.ops / self.cycles if self.cycles else 0.0


@dataclass
class ModeAccounting:
    """Per-mode operation counts and wall-clock time."""

    ops: Dict[Mode, int] = field(default_factory=lambda: {m: 0 for m in Mode})
    seconds: Dict[Mode, float] = field(default_factory=lambda: {m: 0.0 for m in Mode})

    @property
    def detailed_ops(self) -> int:
        """Ops spent in cycle-accurate modes (detail + detailed warming).

        This is the cost metric of the paper's Figure 12: "the number of
        instructions executed in detailed warming and detailed simulation
        were counted".
        """
        return self.ops[Mode.DETAIL] + self.ops[Mode.DETAIL_WARM]

    @property
    def total_ops(self) -> int:
        """Ops across all modes."""
        return sum(self.ops.values())

    def rate(self, mode: Mode) -> float:
        """Measured simulation rate for *mode* in ops/second."""
        secs = self.seconds[mode]
        return self.ops[mode] / secs if secs > 0 else 0.0

    def merge(self, other: "ModeAccounting") -> None:
        """Accumulate another accounting record into this one."""
        for mode in Mode:
            self.ops[mode] += other.ops[mode]
            self.seconds[mode] += other.seconds[mode]


def _make_predictor(kind: str, table_bits: int) -> BranchPredictor:
    if kind == "gshare":
        return GsharePredictor(table_bits)
    if kind == "bimodal":
        return BimodalPredictor(table_bits)
    raise ConfigurationError(f"unknown predictor kind {kind!r}")


class SimulationEngine:
    """Execution-driven simulator over one program.

    Args:
        program: the workload to execute.
        machine: machine configuration.
        predictor: ``"gshare"`` or ``"bimodal"``.
        signal_tracker: optional phase-signal tracker (duck-typed against
            :class:`~repro.signals.SignalTracker`: any object with a
            ``record(block, taken, k)`` method); when attached it
            observes every event in every mode, mirroring the paper's
            always-on profiling hardware.  ``bbv_tracker`` is the
            historical alias for the same parameter (the BBV was the
            only signal before :mod:`repro.signals` existed).
        hierarchy: optional pre-built cache hierarchy — the injection
            point for chip-multiprocessor configurations where several
            engines share one L2 (see :mod:`repro.cpu.multicore`).
        stream: optional event source replacing the default
            execution-driven :class:`~repro.program.ProgramStream` — e.g.
            a :class:`~repro.program.trace_io.TraceStream` for
            trace-driven simulation.
        batched: batched execution policy (all four modes: run-length
            fast-forward for the functional modes, the memoized
            run-at-a-time pipeline path for the detailed ones).
            ``None`` (default) auto-detects: batching is used whenever
            the stream supports ``next_events`` and the tracker (if any)
            supports ``record_batch``, and falls back to the scalar
            event loop otherwise.  ``True`` requires a batch-capable
            stream (:class:`ConfigurationError` otherwise); ``False``
            forces the scalar path — the batched/scalar equivalence
            suite and the rate benchmarks rely on this switch.
    """

    def __init__(
        self,
        program: Program,
        machine: MachineConfig = DEFAULT_MACHINE,
        predictor: str = "gshare",
        signal_tracker: Optional[Any] = None,
        bbv_tracker: Optional[Any] = None,
        hierarchy: Optional[CacheHierarchy] = None,
        stream: Optional[Any] = None,
        batched: Optional[bool] = None,
    ) -> None:
        self.program = program
        self.machine = machine
        self.stream = stream if stream is not None else ProgramStream(program)
        self.hierarchy = hierarchy if hierarchy is not None else CacheHierarchy(machine)
        self.predictor = _make_predictor(predictor, machine.branch_history_bits)
        self.pipeline = InOrderPipeline(machine, self.hierarchy, self.predictor)
        self.warmer = FunctionalWarmer(self.hierarchy, self.predictor)
        if signal_tracker is not None and bbv_tracker is not None:
            raise ConfigurationError(
                "pass signal_tracker or its alias bbv_tracker, not both"
            )
        self.signal_tracker = (
            signal_tracker if signal_tracker is not None else bbv_tracker
        )
        self.accounting = ModeAccounting()
        if batched and not hasattr(self.stream, "next_events"):
            raise ConfigurationError(
                "batched=True requires a stream with next_events() "
                f"(got {type(self.stream).__name__})"
            )
        self.batched = batched

    @property
    def bbv_tracker(self) -> Optional[Any]:
        """Historical alias of :attr:`signal_tracker`."""
        return self.signal_tracker

    @bbv_tracker.setter
    def bbv_tracker(self, tracker: Optional[Any]) -> None:
        self.signal_tracker = tracker

    @property
    def ops_completed(self) -> int:
        """Dynamic operations retired so far (all modes)."""
        return self.stream.ops_emitted

    @property
    def exhausted(self) -> bool:
        """True once the program has run to completion."""
        return self.stream.exhausted

    def _batching(self, tracker: Optional[Any]) -> bool:
        """Whether this run should take the batched (run-length) path."""
        if self.batched is False:
            return False
        return hasattr(self.stream, "next_events") and (
            tracker is None or hasattr(tracker, "record_batch")
        )

    def _run_scalar(
        self,
        execute: Optional[Callable[..., None]],
        n_ops: int,
        tracker: Optional[Any],
    ) -> int:
        """The scalar event loop shared by every mode."""
        next_event = self.stream.next_event
        record = tracker.record if tracker is not None else None
        ops = 0
        while ops < n_ops:
            event = next_event()
            if event is None:
                break
            if execute is not None:
                execute(event)
            if record is not None:
                record(event.block, event.taken, event.k)
            ops += event.block.n_ops
        return ops

    def _run_batched(self, mode: Mode, n_ops: int, tracker: Optional[Any]) -> int:
        """Advance a functional mode through run-length batches.

        FUNC_FAST consumes whole runs with no per-event work at all;
        FUNC_WARM replays each run's events through the warmer (state is
        order-dependent) but skips per-event stream dispatch.  BBV
        accumulation is a single vectorised call per batch.  Both land in
        byte-identical stream/tracker/machine state to the scalar loop.
        """
        runs = self.stream.next_events(n_ops)
        if mode is Mode.FUNC_WARM:
            execute_run = self.warmer.execute_run
            for run in runs:
                execute_run(run)
        ops = 0
        for run in runs:
            ops += run.n * run.block.n_ops
        if tracker is not None and runs:
            tracker.record_batch(runs)
        return ops

    def run(self, mode: Mode, n_ops: int) -> ModeRun:
        """Advance the stream by at least *n_ops* operations in *mode*.

        Stops early (without error) if the program ends.  Returns the ops
        actually consumed and, for detailed modes, the cycles elapsed.
        """
        if n_ops < 0:
            raise SimulationError("n_ops must be non-negative")
        tracker = self.signal_tracker
        cycles = 0
        # Wall-clock only feeds the rate accounting (Fig. 13), never
        # simulated state.
        start_time = time.perf_counter()  # simlint: disable=DET005

        if mode.is_detailed:
            pipeline = self.pipeline
            start_cycle = pipeline.cycle
            if self._batching(tracker):
                runs = self.stream.next_events(n_ops)
                execute_run = pipeline.execute_run
                ops = 0
                for run in runs:
                    execute_run(run)
                    ops += run.n * run.block.n_ops
                if tracker is not None and runs:
                    tracker.record_batch(runs)
            else:
                ops = self._run_scalar(pipeline.execute_event, n_ops, tracker)
            if ops:
                # Issue-cycle delta: window boundaries telescope exactly,
                # so per-window cycles over a full run sum to the full
                # run's cycle count.
                cycles = pipeline.cycle - start_cycle
        elif self._batching(tracker):
            ops = self._run_batched(mode, n_ops, tracker)
        else:
            execute = self.warmer.execute_event if mode is Mode.FUNC_WARM else None
            ops = self._run_scalar(execute, n_ops, tracker)

        elapsed = time.perf_counter() - start_time  # simlint: disable=DET005
        self.accounting.ops[mode] += ops
        self.accounting.seconds[mode] += elapsed
        return ModeRun(mode=mode, ops=ops, cycles=cycles, exhausted=self.stream.exhausted)

    def run_segment(self, segment: "ModeSegment") -> ModeRun:
        """Execute one sampling-plan segment (the session-facing API).

        :class:`~repro.sampling.session.SamplingSession` drives the
        engine exclusively through this entry point, so every technique
        inherits the same batched dispatch and accounting.  The segment
        is duck-typed (``mode`` + ``ops``), keeping the engine free of a
        hard dependency on the sampling layer.
        """
        return self.run(segment.mode, segment.ops)

    def run_to_end(self, mode: Mode, chunk_ops: int = 1_000_000) -> ModeRun:
        """Run in *mode* until the program completes; returns the total."""
        total_ops = 0
        total_cycles = 0
        while not self.stream.exhausted:
            result = self.run(mode, chunk_ops)
            total_ops += result.ops
            total_cycles += result.cycles
        return ModeRun(mode=mode, ops=total_ops, cycles=total_cycles, exhausted=True)

    def snapshot(self) -> Dict[str, Any]:
        """Capture machine + stream state (a checkpoint / livepoint)."""
        state: Dict[str, Any] = {
            "stream": self.stream.snapshot(),
            "hierarchy": self.hierarchy.snapshot(),
            "predictor": self.predictor.snapshot(),
            "pipeline_cycle": self.pipeline.cycle,
        }
        if self.signal_tracker is not None and hasattr(
            self.signal_tracker, "snapshot"
        ):
            # Key kept as "bbv" for checkpoint-format stability (the BBV
            # was the only signal when the format was fixed).
            state["bbv"] = self.signal_tracker.snapshot()
        return state

    def restore(self, state: Dict[str, Any]) -> None:
        """Restore a checkpoint captured by :meth:`snapshot`."""
        self.stream.restore(state["stream"])
        self.hierarchy.restore(state["hierarchy"])
        self.predictor.restore(state["predictor"])
        self.pipeline.reset_timing()
        self.pipeline.cycle = state["pipeline_cycle"]
        if "bbv" in state and self.signal_tracker is not None:
            self.signal_tracker.restore(state["bbv"])

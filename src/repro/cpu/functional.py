"""Functional execution modes: warming and pure fast-forward.

*Functional warming* keeps the long-lifetime structures — caches and branch
predictor — warm while skipping all timing, exactly the SMARTS/PGSS
fast-forward mode.  *Pure fast-forward* touches nothing; it exists for
SimPoint-style skipping where architectural warmth is re-established later
(and for measuring the cost of warming itself, Fig. 13).
"""

from __future__ import annotations

from ..branch import BranchPredictor
from ..memory import CacheHierarchy
from ..program.stream import BlockEvent, BlockRun

__all__ = ["FunctionalWarmer"]


class FunctionalWarmer:
    """Applies the architectural (non-timing) effects of block events.

    Shares the hierarchy and predictor objects with the detailed pipeline so
    that a switch from fast-forwarding to detailed simulation sees warm
    state, as the SMARTS methodology requires.
    """

    def __init__(self, hierarchy: CacheHierarchy, predictor: BranchPredictor) -> None:
        self.hierarchy = hierarchy
        self.predictor = predictor

    def execute_event(self, event: BlockEvent) -> None:
        """Update caches and branch predictor for one block execution."""
        block, taken, k = event
        hierarchy = self.hierarchy
        for line in block.inst_lines:
            hierarchy.warm_inst(line)
        patterns = block.mem_patterns
        for pat in patterns:
            hierarchy.warm_data(pat.address(k), pat.is_write)
        self.predictor.predict_update(block.branch_address, taken)

    def execute_run(self, run: BlockRun) -> None:
        """Apply one run-length record, event by event, in stream order.

        Warming is inherently sequential (cache and predictor state
        carries between events), so the win over per-event dispatch is
        hoisting the block-constant lookups out of the loop; the
        resulting state is identical to :meth:`execute_event` applied to
        each expanded event.
        """
        block = run.block
        hierarchy = self.hierarchy
        warm_inst = hierarchy.warm_inst
        warm_data = hierarchy.warm_data
        predict_update = self.predictor.predict_update
        inst_lines = block.inst_lines
        patterns = block.mem_patterns
        branch_address = block.branch_address
        takens = run.takens
        n = run.n
        last = n - 1
        loop_tail_taken = not run.ends_entry
        k = run.k_start
        for i in range(n):
            for line in inst_lines:
                warm_inst(line)
            for pat in patterns:
                warm_data(pat.address(k), pat.is_write)
            if takens is None:
                taken = i < last or loop_tail_taken
            else:
                taken = takens[i]
            predict_update(branch_address, taken)
            k += 1

"""Functional execution modes: warming and pure fast-forward.

*Functional warming* keeps the long-lifetime structures — caches and branch
predictor — warm while skipping all timing, exactly the SMARTS/PGSS
fast-forward mode.  *Pure fast-forward* touches nothing; it exists for
SimPoint-style skipping where architectural warmth is re-established later
(and for measuring the cost of warming itself, Fig. 13).
"""

from __future__ import annotations

from ..branch import BranchPredictor
from ..memory import CacheHierarchy
from ..program.stream import BlockEvent

__all__ = ["FunctionalWarmer"]


class FunctionalWarmer:
    """Applies the architectural (non-timing) effects of block events.

    Shares the hierarchy and predictor objects with the detailed pipeline so
    that a switch from fast-forwarding to detailed simulation sees warm
    state, as the SMARTS methodology requires.
    """

    def __init__(self, hierarchy: CacheHierarchy, predictor: BranchPredictor) -> None:
        self.hierarchy = hierarchy
        self.predictor = predictor

    def execute_event(self, event: BlockEvent) -> None:
        """Update caches and branch predictor for one block execution."""
        block, taken, k = event
        hierarchy = self.hierarchy
        for line in block.inst_lines:
            hierarchy.warm_inst(line)
        patterns = block.mem_patterns
        for m, pat in enumerate(patterns):
            hierarchy.warm_data(pat.address(k), pat.is_write)
        self.predictor.predict_update(block.branch_address, taken)

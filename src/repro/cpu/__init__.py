"""The cycle-accurate CPU simulator and its execution modes.

The simulated machine is the paper's evaluation processor: a 4-wide issue,
in-order superscalar with a split 4-way 64 KB L1 and a unified 1 MB L2
(Section 5).  Four execution modes mirror the paper's Figure 13 taxonomy:

* **detailed simulation** — full scoreboard timing, statistics recorded;
* **detailed warming** — identical timing, statistics discarded (the
  3000-op pre-sample warm-up of SMARTS/PGSS);
* **functional warming** — caches and branch predictor updated, no timing
  (SMARTS/PGSS fast-forwarding);
* **functional fast-forward** — nothing but op counting (SimPoint-style
  skipping).
"""

from .pipeline import InOrderPipeline, WindowResult
from .engine import Mode, ModeAccounting, SimulationEngine
from .checkpoints import Checkpoint, CheckpointStore
from .multicore import CoreResult, MultiCoreEngine, MultiCorePgss

__all__ = [
    "InOrderPipeline",
    "WindowResult",
    "Mode",
    "ModeAccounting",
    "SimulationEngine",
    "Checkpoint",
    "CheckpointStore",
    "CoreResult",
    "MultiCoreEngine",
    "MultiCorePgss",
]

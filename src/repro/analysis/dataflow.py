"""Whole-program dataflow layer: module IR, project model, incremental cache.

The per-file AST rules (DESIGN.md §10) police invariants a single module
can prove about itself.  The invariants the reproduction's credibility
actually rests on are *interprocedural*: oracle values must never steer
sampling decisions even when laundered through a helper-function return,
RNG objects must trace back to seeded construction, bus events must have
subscribers, and results must flow through the concurrency-safe
``ResultCache``.  This module provides the substrate those analyses
(DESIGN.md §14) run on:

* a **serialisable mini-IR** per module — ordered assignment/return/call
  facts with statically-spelled names preserved — extracted once per
  file and independent of the ``ast`` objects, so it can be cached on
  disk and shipped between worker processes;
* a :class:`Project` — every module's IR plus the import graph, with
  memo slots the symbol-table/call-graph/taint layers attach to;
* :class:`ProjectRule` — the whole-program analogue of
  :class:`~repro.analysis.core.Rule`; ``closure``-scoped rules see one
  module (plus anything reachable through its imports) and are
  incrementally cacheable, ``global``-scoped rules see the whole
  project every run;
* an **incremental analysis cache** keyed on per-file content hashes:
  unchanged files reuse their extracted IR, and a module's
  closure-scoped findings are reused when nothing in its transitive
  import closure changed — the dependency-graph invalidation that makes
  a one-file edit re-analyze a handful of modules instead of the tree;
* a **multiprocess fan-out** over files (mirroring the
  ``repro.experiments.parallel`` worker patterns) for cold runs.
"""

from __future__ import annotations

import ast
import concurrent.futures
import hashlib
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path, PurePath
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .core import (
    Finding,
    Rule,
    Severity,
    iter_python_files,
    lint_source,
    parse_suppressions,
)

__all__ = [
    "AnalysisCache",
    "AnalysisStats",
    "ClassIR",
    "FuncIR",
    "ModuleIR",
    "Project",
    "ProjectRule",
    "SAssign",
    "SExpr",
    "SReturn",
    "VAttr",
    "VCall",
    "VConst",
    "VName",
    "VOp",
    "VTuple",
    "analyze_project",
    "extract_module",
    "iter_calls",
    "module_name_for",
]

#: Bump when the IR shape or extraction semantics change; stale cache
#: files from older versions are discarded wholesale.
IR_VERSION = 1

#: Pseudo-function holding a module's top-level statements.
MODULE_BODY = "<module>"


# ----------------------------------------------------------------------
# Value expressions: a serialisable skeleton of the AST expression tree.


@dataclass(frozen=True)
class VConst:
    """A literal; ``kind`` is the literal's type name (``int``, ``str``...)."""

    kind: str


@dataclass(frozen=True)
class VName:
    """A local/global name read."""

    name: str


@dataclass(frozen=True)
class VAttr:
    """Attribute load ``base.attr``."""

    base: "ValueExpr"
    attr: str
    line: int = 0
    col: int = 0


@dataclass(frozen=True)
class VCall:
    """A call site.

    ``name`` is the statically-spelled dotted callee (``ctx.trace``,
    ``np.random.default_rng``) when one exists; ``func`` keeps the
    evaluated callee expression for method calls on computed values.
    """

    name: Optional[str]
    func: Optional["ValueExpr"]
    args: Tuple["ValueExpr", ...]
    kwargs: Tuple[Tuple[Optional[str], "ValueExpr"], ...]
    line: int = 0
    col: int = 0


@dataclass(frozen=True)
class VTuple:
    """Tuple/list display (element structure preserved for unpacking)."""

    items: Tuple["ValueExpr", ...]


@dataclass(frozen=True)
class VOp:
    """Any combining expression — taint is the union of the operands."""

    operands: Tuple["ValueExpr", ...]


ValueExpr = Union[VConst, VName, VAttr, VCall, VTuple, VOp]


# ----------------------------------------------------------------------
# Statements (ordered, per function).


@dataclass(frozen=True)
class SAssign:
    """``targets = value``; each target is a name, tuple tree, or opaque."""

    targets: Tuple["TargetSpec", ...]
    value: ValueExpr
    line: int


@dataclass(frozen=True)
class SReturn:
    """``return value``."""

    value: Optional[ValueExpr]
    line: int


@dataclass(frozen=True)
class SExpr:
    """A bare expression statement (usually a call)."""

    value: ValueExpr
    line: int


Stmt = Union[SAssign, SReturn, SExpr]

#: Assignment target: ("name", x) | ("tuple", (specs...)) | ("opaque",).
TargetSpec = Tuple[Any, ...]


@dataclass(frozen=True)
class FuncIR:
    """One function's extracted dataflow facts."""

    qname: str
    name: str
    params: Tuple[str, ...]
    body: Tuple[Stmt, ...]
    line: int
    class_name: Optional[str] = None

    @property
    def is_method(self) -> bool:
        """True when the function is defined inside a class."""
        return self.class_name is not None


@dataclass(frozen=True)
class ClassIR:
    """One class: base-name spellings and defined method names."""

    name: str
    bases: Tuple[str, ...]
    methods: Tuple[str, ...]
    line: int


@dataclass(frozen=True)
class ModuleIR:
    """Everything the whole-program analyses need to know about one file."""

    path: str
    module: str
    content_hash: str
    imports: Tuple[Tuple[str, str], ...]
    functions: Tuple[FuncIR, ...]
    classes: Tuple[ClassIR, ...]
    suppressions: Tuple[Tuple[int, FrozenSet[str]], ...]
    file_suppressions: FrozenSet[str]
    parse_error: Optional[str] = None

    def import_map(self) -> Dict[str, str]:
        """Alias -> absolute dotted target."""
        return dict(self.imports)

    def function(self, qname: str) -> Optional[FuncIR]:
        """Look up one function by qualified name."""
        for fn in self.functions:
            if fn.qname == qname:
                return fn
        return None

    def is_suppressed(self, line: int, rule_id: str, end_line: int = 0) -> bool:
        """Mirror of :meth:`ModuleContext.is_suppressed` over cached IR."""
        if "*" in self.file_suppressions or rule_id in self.file_suppressions:
            return True
        table = dict(self.suppressions)
        for candidate in (line, end_line or line):
            ids = table.get(candidate)
            if ids is not None and ("*" in ids or rule_id in ids):
                return True
        return False


# ----------------------------------------------------------------------
# Extraction: AST -> IR.


def module_name_for(path: str) -> str:
    """Dotted module name, anchored at the last ``repro`` path component.

    Files outside a ``repro`` tree (test fixtures, scratch files) get a
    stem-based name so the project model still works on them.
    """
    pure = PurePath(PurePath(path).as_posix())
    parts = pure.parts
    anchor = None
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            anchor = i
            break
    if anchor is None:
        return pure.stem
    tail = [p for p in parts[anchor:]]
    tail[-1] = PurePath(tail[-1]).stem
    if tail[-1] == "__init__":
        tail = tail[:-1]
    return ".".join(tail)


def _spelled_name(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Extractor:
    """Translates one module's AST into the serialisable IR."""

    def __init__(self, path: str, module: str) -> None:
        self.path = path
        self.module = module
        self.functions: List[FuncIR] = []
        self.classes: List[ClassIR] = []
        self.imports: List[Tuple[str, str]] = []

    # -- expressions ----------------------------------------------------

    def expr(self, node: Optional[ast.AST]) -> ValueExpr:
        """Translate one expression node (never returns None)."""
        if node is None:
            return VConst("none")
        if isinstance(node, ast.Constant):
            return VConst(type(node.value).__name__)
        if isinstance(node, ast.Name):
            return VName(node.id)
        if isinstance(node, ast.Attribute):
            return VAttr(
                self.expr(node.value), node.attr, node.lineno, node.col_offset
            )
        if isinstance(node, ast.Call):
            args = tuple(self.expr(a) for a in node.args)
            kwargs = tuple(
                (kw.arg, self.expr(kw.value)) for kw in node.keywords
            )
            return VCall(
                _spelled_name(node.func),
                self.expr(node.func),
                args,
                kwargs,
                node.lineno,
                node.col_offset,
            )
        if isinstance(node, (ast.Tuple, ast.List)):
            return VTuple(tuple(self.expr(e) for e in node.elts))
        if isinstance(node, ast.Starred):
            return self.expr(node.value)
        if isinstance(node, ast.BinOp):
            return VOp((self.expr(node.left), self.expr(node.right)))
        if isinstance(node, ast.BoolOp):
            return VOp(tuple(self.expr(v) for v in node.values))
        if isinstance(node, ast.UnaryOp):
            return VOp((self.expr(node.operand),))
        if isinstance(node, ast.Compare):
            return VOp(
                (self.expr(node.left),)
                + tuple(self.expr(c) for c in node.comparators)
            )
        if isinstance(node, ast.IfExp):
            return VOp((self.expr(node.body), self.expr(node.orelse)))
        if isinstance(node, ast.Subscript):
            return VOp((self.expr(node.value),))
        if isinstance(node, ast.JoinedStr):
            return VConst("str")
        if isinstance(node, (ast.Dict,)):
            parts: List[ValueExpr] = []
            for key, value in zip(node.keys, node.values):
                if key is not None:
                    parts.append(self.expr(key))
                parts.append(self.expr(value))
            return VOp(tuple(parts))
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            parts = [self.expr(node.elt)]
            for gen in node.generators:
                parts.append(self.expr(gen.iter))
            return VOp(tuple(parts))
        if isinstance(node, ast.DictComp):
            parts = [self.expr(node.key), self.expr(node.value)]
            for gen in node.generators:
                parts.append(self.expr(gen.iter))
            return VOp(tuple(parts))
        if isinstance(node, ast.Lambda):
            return VConst("lambda")
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.expr(node.value)  # type: ignore[arg-type]
        if isinstance(node, ast.Yield):
            return self.expr(node.value) if node.value else VConst("none")
        if isinstance(node, ast.Set):
            # Kept distinguishable: set literals are not JSON-able, and
            # the cache-safety family needs to spot them in payloads.
            return VCall(
                "<set-literal>",
                None,
                tuple(self.expr(e) for e in node.elts),
                (),
                node.lineno,
                node.col_offset,
            )
        if isinstance(node, ast.NamedExpr):
            return self.expr(node.value)
        if isinstance(node, ast.Slice):
            return VConst("slice")
        return VConst("other")

    # -- targets --------------------------------------------------------

    def target(self, node: ast.AST) -> TargetSpec:
        """Translate an assignment target."""
        if isinstance(node, ast.Name):
            return ("name", node.id)
        if isinstance(node, (ast.Tuple, ast.List)):
            return ("tuple", tuple(self.target(e) for e in node.elts))
        if isinstance(node, ast.Starred):
            return self.target(node.value)
        return ("opaque",)

    # -- statements -----------------------------------------------------

    def stmts(self, body: Sequence[ast.stmt]) -> List[Stmt]:
        """Flatten a statement list (control flow included) in order."""
        out: List[Stmt] = []
        for node in body:
            out.extend(self.stmt(node))
        return out

    def stmt(self, node: ast.stmt) -> List[Stmt]:
        """Translate one statement (nested defs handled separately)."""
        out: List[Stmt] = []
        if isinstance(node, ast.Assign):
            out.append(
                SAssign(
                    tuple(self.target(t) for t in node.targets),
                    self.expr(node.value),
                    node.lineno,
                )
            )
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                out.append(
                    SAssign(
                        (self.target(node.target),),
                        self.expr(node.value),
                        node.lineno,
                    )
                )
        elif isinstance(node, ast.AugAssign):
            target = self.target(node.target)
            read: ValueExpr = (
                VName(target[1]) if target[0] == "name" else VConst("other")
            )
            out.append(
                SAssign(
                    (target,),
                    VOp((read, self.expr(node.value))),
                    node.lineno,
                )
            )
        elif isinstance(node, ast.Return):
            out.append(SReturn(self.expr(node.value), node.lineno))
        elif isinstance(node, ast.Expr):
            out.append(SExpr(self.expr(node.value), node.lineno))
        elif isinstance(node, (ast.If,)):
            out.append(SExpr(self.expr(node.test), node.lineno))
            out.extend(self.stmts(node.body))
            out.extend(self.stmts(node.orelse))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            out.append(
                SAssign(
                    (self.target(node.target),),
                    VOp((self.expr(node.iter),)),
                    node.lineno,
                )
            )
            out.extend(self.stmts(node.body))
            out.extend(self.stmts(node.orelse))
        elif isinstance(node, (ast.While,)):
            out.append(SExpr(self.expr(node.test), node.lineno))
            out.extend(self.stmts(node.body))
            out.extend(self.stmts(node.orelse))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    out.append(
                        SAssign(
                            (self.target(item.optional_vars),),
                            self.expr(item.context_expr),
                            node.lineno,
                        )
                    )
                else:
                    out.append(SExpr(self.expr(item.context_expr), node.lineno))
            out.extend(self.stmts(node.body))
        elif isinstance(node, ast.Try):
            out.extend(self.stmts(node.body))
            for handler in node.handlers:
                out.extend(self.stmts(handler.body))
            out.extend(self.stmts(node.orelse))
            out.extend(self.stmts(node.finalbody))
        elif isinstance(node, ast.Raise):
            if node.exc is not None:
                out.append(SExpr(self.expr(node.exc), node.lineno))
        elif isinstance(node, ast.Assert):
            out.append(SExpr(self.expr(node.test), node.lineno))
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            # Function-local imports still bind names the module's call
            # sites resolve through (lazy imports are an idiom here).
            self.visit_import(node)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested def (progress-bus closures, local helpers): extract
            # it as its own function so its call sites stay visible.
            self.visit_function(node, None)
        elif isinstance(node, ast.Delete):
            pass
        return out

    # -- imports / defs -------------------------------------------------

    def visit_import(self, node: ast.stmt) -> None:
        """Record alias -> absolute dotted target."""
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                self.imports.append((name, target))
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = self.module.split(".")
                # level 1 = current package: drop the module basename.
                keep = len(parts) - node.level
                prefix = ".".join(parts[:keep]) if keep > 0 else ""
                base = f"{prefix}.{base}" if base and prefix else (prefix or base)
            for alias in node.names:
                if alias.name == "*":
                    continue
                name = alias.asname or alias.name
                target = f"{base}.{alias.name}" if base else alias.name
                self.imports.append((name, target))

    def visit_function(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        class_name: Optional[str],
    ) -> None:
        """Extract one function (methods carry their class name)."""
        args = node.args
        params = tuple(
            a.arg
            for a in (args.posonlyargs + args.args + args.kwonlyargs)
        )
        prefix = f"{class_name}." if class_name else ""
        qname = f"{self.module}.{prefix}{node.name}"
        self.functions.append(
            FuncIR(
                qname=qname,
                name=node.name,
                params=params,
                body=tuple(self.stmts(node.body)),
                line=node.lineno,
                class_name=class_name,
            )
        )

    def run(self, tree: ast.Module) -> None:
        """Walk the module: imports, classes, functions, top-level body."""
        top: List[ast.stmt] = []
        for node in tree.body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self.visit_import(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.visit_function(node, None)
            elif isinstance(node, ast.ClassDef):
                methods: List[str] = []
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        methods.append(item.name)
                        self.visit_function(item, node.name)
                    elif isinstance(item, (ast.Assign, ast.AnnAssign)):
                        top.append(item)
                self.classes.append(
                    ClassIR(
                        name=node.name,
                        bases=tuple(
                            b
                            for b in (
                                _spelled_name(base) for base in node.bases
                            )
                            if b is not None
                        ),
                        methods=tuple(methods),
                        line=node.lineno,
                    )
                )
            else:
                # Imports inside try/if blocks still matter for resolution.
                for sub in ast.walk(node):
                    if isinstance(sub, (ast.Import, ast.ImportFrom)):
                        self.visit_import(sub)
                top.append(node)
        self.functions.append(
            FuncIR(
                qname=f"{self.module}.{MODULE_BODY}",
                name=MODULE_BODY,
                params=(),
                body=tuple(self.stmts(top)),
                line=1,
            )
        )


def extract_module(path: str, source: Optional[str] = None) -> ModuleIR:
    """Parse *path* (or *source*) and extract its IR."""
    if source is None:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
    posix = PurePath(path).as_posix()
    module = module_name_for(posix)
    content_hash = hashlib.sha256(source.encode()).hexdigest()
    suppressions, file_suppressions = parse_suppressions(source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return ModuleIR(
            path=posix,
            module=module,
            content_hash=content_hash,
            imports=(),
            functions=(),
            classes=(),
            suppressions=tuple(sorted(suppressions.items())),
            file_suppressions=file_suppressions,
            parse_error=str(exc.msg),
        )
    extractor = _Extractor(posix, module)
    extractor.run(tree)
    return ModuleIR(
        path=posix,
        module=module,
        content_hash=content_hash,
        imports=tuple(extractor.imports),
        functions=tuple(extractor.functions),
        classes=tuple(extractor.classes),
        suppressions=tuple(sorted(suppressions.items())),
        file_suppressions=file_suppressions,
    )


def iter_calls(expr: ValueExpr) -> Iterator[VCall]:
    """Yield every call node inside *expr* (depth-first, self included)."""
    stack: List[ValueExpr] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, VCall):
            yield node
            if node.func is not None:
                stack.append(node.func)
            stack.extend(node.args)
            stack.extend(v for _, v in node.kwargs)
        elif isinstance(node, VAttr):
            stack.append(node.base)
        elif isinstance(node, VTuple):
            stack.extend(node.items)
        elif isinstance(node, VOp):
            stack.extend(node.operands)


# ----------------------------------------------------------------------
# The project model.


@dataclass
class AnalysisStats:
    """Counters describing one whole-program analysis run."""

    modules_total: int = 0
    #: Modules whose IR was (re-)extracted this run (cache misses).
    modules_extracted: int = 0
    #: Modules whose closure-scoped findings were recomputed.
    modules_analyzed: int = 0
    #: Modules served entirely from the findings cache.
    findings_cached: int = 0
    jobs: int = 1

    def to_dict(self) -> Dict[str, object]:
        """JSON-able counter snapshot."""
        return {
            "modules_total": self.modules_total,
            "modules_extracted": self.modules_extracted,
            "modules_analyzed": self.modules_analyzed,
            "findings_cached": self.findings_cached,
            "jobs": self.jobs,
        }


class Project:
    """Every module's IR plus derived structures the analyses memoise."""

    def __init__(self, modules: Sequence[ModuleIR]) -> None:
        self.modules: List[ModuleIR] = sorted(modules, key=lambda m: m.path)
        self.by_module: Dict[str, ModuleIR] = {
            m.module: m for m in self.modules
        }
        self.by_path: Dict[str, ModuleIR] = {m.path: m for m in self.modules}
        #: Memo slots used by the symbol-table / call-graph / taint layers.
        self.memo: Dict[str, Any] = {}

    def functions(self) -> Iterator[FuncIR]:
        """Every function of every module."""
        for mir in self.modules:
            yield from mir.functions

    def dependencies(self, mir: ModuleIR) -> Set[str]:
        """Project-internal modules *mir* imports (direct)."""
        deps: Set[str] = set()
        for _, target in mir.imports:
            probe = target
            while probe:
                if probe in self.by_module and probe != mir.module:
                    deps.add(probe)
                    break
                probe = probe.rpartition(".")[0]
        return deps

    def import_closure(self, mir: ModuleIR) -> Set[str]:
        """Transitive import closure of *mir* (module names, self included)."""
        seen: Set[str] = {mir.module}
        frontier = [mir]
        while frontier:
            current = frontier.pop()
            for dep in self.dependencies(current):
                if dep not in seen:
                    seen.add(dep)
                    frontier.append(self.by_module[dep])
        return seen

    def closure_key(self, mir: ModuleIR, salt: str = "") -> str:
        """Hash of the module's closure content — the findings-cache key."""
        material = [salt]
        for name in sorted(self.import_closure(mir)):
            material.append(f"{name}:{self.by_module[name].content_hash}")
        return hashlib.sha256("\n".join(material).encode()).hexdigest()


class ProjectRule:
    """Base class for one whole-program check.

    ``scope`` controls incrementality: ``"closure"`` rules derive a
    module's findings from that module plus its transitive import
    closure (cacheable per closure hash); ``"global"`` rules need the
    entire project every run (e.g. "is this event type subscribed
    *anywhere*?").
    """

    rule_id: str = "XXX100"
    severity: Severity = Severity.ERROR
    summary: str = ""
    scope: str = "closure"

    def check_module(self, project: Project, mir: ModuleIR) -> Iterator[Finding]:
        """Yield findings for one module (closure-scoped rules)."""
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        """Yield findings for the whole project (global-scoped rules)."""
        return iter(())

    def finding(
        self,
        mir: ModuleIR,
        line: int,
        col: int,
        message: str,
        end_line: int = 0,
    ) -> Finding:
        """Build a finding at an IR-recorded location."""
        return Finding(
            path=mir.path,
            line=max(line, 1),
            col=col + 1,
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
            end_line=end_line,
        )


# ----------------------------------------------------------------------
# Incremental cache.


class AnalysisCache:
    """On-disk cache: per-file IR keyed on content hash, plus findings
    keyed on import-closure hashes.

    One pickle file holds everything; it is rewritten atomically
    (unique tmp + ``os.replace``, the :class:`ResultCache` publication
    pattern) so concurrent lint runs can share a cache directory without
    torn reads.  A version stamp discards caches from older IR shapes.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._ir: Dict[str, ModuleIR] = {}
        self._findings: Dict[str, Tuple[str, Tuple[Finding, ...]]] = {}
        self._loaded_ok = False
        self._load()

    def _load(self) -> None:
        try:
            with self.path.open("rb") as fh:
                payload = pickle.load(fh)
            if payload.get("version") == IR_VERSION:
                self._ir = payload["ir"]
                self._findings = payload["findings"]
                self._loaded_ok = True
        except (OSError, pickle.PickleError, KeyError, EOFError,
                AttributeError, ImportError):
            self._ir = {}
            self._findings = {}

    def save(self) -> None:
        """Atomically publish the cache file."""
        payload = {
            "version": IR_VERSION,
            "ir": self._ir,
            "findings": self._findings,
        }
        tmp = self.path.with_name(
            f"{self.path.name}.{os.getpid()}.tmp"
        )
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with tmp.open("wb") as fh:
                pickle.dump(payload, fh)
            os.replace(tmp, self.path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass

    def ir(self, path: str, content_hash: str) -> Optional[ModuleIR]:
        """Cached IR for *path* if its content hash still matches."""
        cached = self._ir.get(path)
        if cached is not None and cached.content_hash == content_hash:
            return cached
        return None

    def put_ir(self, mir: ModuleIR) -> None:
        """Store one module's IR."""
        self._ir[mir.path] = mir

    def findings(
        self, path: str, closure_key: str
    ) -> Optional[Tuple[Finding, ...]]:
        """Cached closure-scoped findings if the closure is unchanged."""
        cached = self._findings.get(path)
        if cached is not None and cached[0] == closure_key:
            return cached[1]
        return None

    def put_findings(
        self, path: str, closure_key: str, findings: Sequence[Finding]
    ) -> None:
        """Store one module's closure-scoped findings."""
        self._findings[path] = (closure_key, tuple(findings))


# ----------------------------------------------------------------------
# Drivers.


def _hash_file(path: str) -> str:
    with open(path, "rb") as fh:
        return hashlib.sha256(fh.read()).hexdigest()


def _extract_worker(path: str) -> ModuleIR:
    """Process-pool worker: extract one file (module-level for pickling)."""
    return extract_module(path)


def _load_modules(
    files: Sequence[str],
    cache: Optional[AnalysisCache],
    jobs: int,
    stats: AnalysisStats,
) -> List[ModuleIR]:
    """IR for every file, reusing the cache and fanning extraction out."""
    modules: List[ModuleIR] = []
    todo: List[str] = []
    for path in files:
        posix = PurePath(path).as_posix()
        if cache is not None:
            try:
                cached = cache.ir(posix, _hash_file(path))
            except OSError:
                cached = None
            if cached is not None:
                modules.append(cached)
                continue
        todo.append(path)
    stats.modules_extracted = len(todo)
    if jobs > 1 and len(todo) > 1:
        # Mirrors the ParallelRunner fan-out: pure per-item workers, a
        # bounded pool, results folded back on the driver side.
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(jobs, len(todo))
        ) as pool:
            for mir in pool.map(_extract_worker, todo):
                modules.append(mir)
    else:
        for path in todo:
            modules.append(extract_module(path))
    if cache is not None:
        for mir in modules:
            cache.put_ir(mir)
    return modules


def analyze_project(
    paths: Iterable[str],
    rules: Sequence[ProjectRule],
    ast_rules: Sequence[Rule] = (),
    cache: Optional[AnalysisCache] = None,
    jobs: int = 1,
) -> Tuple[List[Finding], AnalysisStats]:
    """Run whole-program *rules* (and optional per-module *ast_rules*).

    Returns the sorted findings plus an :class:`AnalysisStats` snapshot.
    Suppression comments apply to project findings exactly as they do to
    per-module ones.  When *cache* is given, unchanged files reuse their
    IR and modules whose import closure is untouched reuse their
    closure-scoped findings outright.
    """
    files = sorted({PurePath(p).as_posix(): p for p in
                    iter_python_files(paths)}.values())
    stats = AnalysisStats(modules_total=len(files), jobs=max(1, jobs))
    modules = _load_modules(files, cache, max(1, jobs), stats)
    project = Project(modules)

    closure_rules = [r for r in rules if r.scope == "closure"]
    global_rules = [r for r in rules if r.scope != "closure"]
    rule_salt = ",".join(sorted(r.rule_id for r in closure_rules))
    if ast_rules:
        rule_salt += "|ast:" + ",".join(
            sorted(r.rule_id for r in ast_rules)
        )

    findings: List[Finding] = []
    for mir in project.modules:
        closure_key = (
            project.closure_key(mir, rule_salt) if cache is not None else ""
        )
        if cache is not None:
            cached = cache.findings(mir.path, closure_key)
            if cached is not None:
                findings.extend(cached)
                stats.findings_cached += 1
                continue
        stats.modules_analyzed += 1
        module_findings: List[Finding] = []
        for rule in closure_rules:
            for f in rule.check_module(project, mir):
                if not mir.is_suppressed(f.line, f.rule_id, f.end_line):
                    module_findings.append(f)
        if ast_rules:
            # Per-module syntactic rules ride the same fan-out/caching.
            module_findings.extend(_ast_findings(mir.path, ast_rules))
        if cache is not None:
            cache.put_findings(mir.path, closure_key, module_findings)
        findings.extend(module_findings)

    for rule in global_rules:
        for f in rule.check_project(project):
            mir = project.by_path.get(f.path)
            if mir is None or not mir.is_suppressed(
                f.line, f.rule_id, f.end_line
            ):
                findings.append(f)

    if cache is not None:
        cache.save()
    return sorted(findings, key=Finding.sort_key), stats


def _ast_findings(path: str, ast_rules: Sequence[Rule]) -> List[Finding]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
    except OSError:
        return []
    return lint_source(source, path, ast_rules)

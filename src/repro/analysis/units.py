"""Dimensional-analysis rule: operations and cycles are different units.

The simulator counts work in *operations* (``*_ops``, ``*_insts``) and
time in *cycles* (``*_cycles``).  Dividing one by the other is how IPC
and CPI are defined — that is a unit conversion and always fine.  But
*adding or subtracting* across the two families is meaningless in every
case, and it is exactly the bug class a sampled simulator is most prone
to: accumulating a warm-up cycle count into a sampled op budget skews
every downstream estimate while all unit tests still pass.

Rule IDs
--------
UNI001  additive arithmetic or comparison mixing ``*_ops``/``*_insts``
        with ``*_cycles`` identifiers
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Type

from .core import Finding, ModuleContext, Rule, Severity, dotted_name

__all__ = ["UNITS_RULES", "UnitMixRule"]

_OPS_SUFFIXES = ("_ops", "_insts", "_instructions")
_OPS_NAMES = frozenset({"ops", "insts", "instructions", "n_ops", "n_insts"})
_CYCLE_SUFFIXES = ("_cycles",)
_CYCLE_NAMES = frozenset({"cycles", "n_cycles"})


def _unit_family(node: ast.AST) -> Optional[str]:
    """Classify an identifier as counting 'ops', 'cycles', or neither."""
    name = dotted_name(node)
    if name is None:
        return None
    leaf = name.split(".")[-1].lower()
    if leaf in _OPS_NAMES or leaf.endswith(_OPS_SUFFIXES):
        return "ops"
    if leaf in _CYCLE_NAMES or leaf.endswith(_CYCLE_SUFFIXES):
        return "cycles"
    return None


class UnitMixRule(Rule):
    """UNI001: additive mixing of op counts with cycle counts.

    ``a_ops / b_cycles`` (a rate) and ``a_ops * factor`` are fine;
    ``a_ops + b_cycles``, ``a_ops - b_cycles``, ``ops += cycles`` and
    ``a_ops < b_cycles`` are always bugs unless an explicit conversion
    intervenes — in which case the converted value should be *named*
    for what it is.
    """

    rule_id = "UNI001"
    severity = Severity.ERROR
    summary = "arithmetic mixes op counts with cycle counts"

    @staticmethod
    def _message(left: str, right: str) -> str:
        return (
            f"mixes {left} with {right} without a conversion; operations "
            "and cycles are different units — convert explicitly (e.g. "
            "via an IPC factor) and name the result for its unit"
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                left = _unit_family(node.left)
                right = _unit_family(node.right)
                if left and right and left != right:
                    yield self.finding(ctx, node, self._message(left, right))
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                left = _unit_family(node.target)
                right = _unit_family(node.value)
                if left and right and left != right:
                    yield self.finding(ctx, node, self._message(left, right))
            elif isinstance(node, ast.Compare) and len(node.ops) == 1:
                if isinstance(
                    node.ops[0], (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq)
                ):
                    left = _unit_family(node.left)
                    right = _unit_family(node.comparators[0])
                    if left and right and left != right:
                        yield self.finding(
                            ctx, node, self._message(left, right)
                        )


UNITS_RULES: List[Type[Rule]] = [UnitMixRule]

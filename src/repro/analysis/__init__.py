"""Static analysis for simulation correctness: the ``simlint`` engine.

PGSS-Sim's headline claims rest on two invariants that unit tests can
only spot-check but static analysis can police structurally:

* **Bit-reproducibility** — every RNG is explicitly seeded, no wall
  clock or hash-order dependence reaches simulated state, so a run is a
  pure function of (workload, config, seed).
* **No oracle leakage** — online sampling and phase-tracking code makes
  decisions from the past of the stream only: no imports from the
  experiment harness, no calls into full-run/ground-truth APIs, no
  stream lookahead.

:mod:`repro.analysis.core` provides the rule engine (AST walk,
severities, ``# simlint: disable=RULE`` suppressions, text/JSON
reporters); :mod:`~repro.analysis.determinism`,
:mod:`~repro.analysis.leakage`, :mod:`~repro.analysis.hygiene` and
:mod:`~repro.analysis.units` provide the per-module domain rules.

On top of the per-module rules sits a whole-program layer (DESIGN.md
§14): :mod:`~repro.analysis.dataflow` extracts a serialisable module
IR and incremental analysis cache, :mod:`~repro.analysis.callgraph`
and :mod:`~repro.analysis.taint` provide interprocedural reasoning,
and four rule families consume them — oracle taint
(:mod:`~repro.analysis.oracle_flow`, LEA1xx), RNG provenance
(:mod:`~repro.analysis.rng_provenance`, DET1xx), event-bus protocol
(:mod:`~repro.analysis.bus_protocol`, EVT1xx) and cache safety
(:mod:`~repro.analysis.cache_safety`, CCH1xx).  The console script
``pgss-lint`` (see :mod:`repro.analysis.cli`) runs them all, with a
SARIF reporter (:mod:`~repro.analysis.sarif`) for CI annotation.
"""

from __future__ import annotations

from typing import List, Type

from .bus_protocol import (
    DeadEventRule,
    ForeignEmitRule,
    UnknownSubscriptionRule,
)
from .cache_safety import (
    CacheDirWriteRule,
    CellParamJsonRule,
    DirectExperimentWriteRule,
)
from .core import (
    Finding,
    ModuleContext,
    Rule,
    Severity,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    max_severity,
    render_json,
    render_text,
)
from .dataflow import AnalysisCache, ProjectRule, analyze_project
from .determinism import DETERMINISM_RULES
from .hygiene import HYGIENE_RULES
from .leakage import LEAKAGE_RULES
from .oracle_flow import (
    OracleIntoBudgetRule,
    OracleIntoPlanRule,
    OracleIntoThresholdRule,
)
from .rng_provenance import (
    GlobalRngRule,
    MeasurePathDrawRule,
    UnseededRngRule,
)
from .sarif import render_sarif
from .units import UNITS_RULES

__all__ = [
    "AnalysisCache",
    "Finding",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "Severity",
    "analyze_project",
    "default_project_rules",
    "default_rules",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "max_severity",
    "render_json",
    "render_sarif",
    "render_text",
]

#: The whole-program rule families (DESIGN.md §14).
PROJECT_RULES: List[Type[ProjectRule]] = [
    OracleIntoPlanRule,
    OracleIntoBudgetRule,
    OracleIntoThresholdRule,
    UnseededRngRule,
    GlobalRngRule,
    MeasurePathDrawRule,
    DeadEventRule,
    UnknownSubscriptionRule,
    ForeignEmitRule,
    CacheDirWriteRule,
    DirectExperimentWriteRule,
    CellParamJsonRule,
]


def default_rules() -> List[Rule]:
    """Fresh instances of every built-in per-module rule, in ID order."""
    classes: List[Type[Rule]] = [
        *DETERMINISM_RULES,
        *LEAKAGE_RULES,
        *HYGIENE_RULES,
        *UNITS_RULES,
    ]
    return sorted((cls() for cls in classes), key=lambda r: r.rule_id)


def default_project_rules() -> List[ProjectRule]:
    """Fresh instances of every whole-program rule, in ID order."""
    return sorted((cls() for cls in PROJECT_RULES), key=lambda r: r.rule_id)

"""Static analysis for simulation correctness: the ``simlint`` engine.

PGSS-Sim's headline claims rest on two invariants that unit tests can
only spot-check but static analysis can police structurally:

* **Bit-reproducibility** — every RNG is explicitly seeded, no wall
  clock or hash-order dependence reaches simulated state, so a run is a
  pure function of (workload, config, seed).
* **No oracle leakage** — online sampling and phase-tracking code makes
  decisions from the past of the stream only: no imports from the
  experiment harness, no calls into full-run/ground-truth APIs, no
  stream lookahead.

:mod:`repro.analysis.core` provides the rule engine (AST walk,
severities, ``# simlint: disable=RULE`` suppressions, text/JSON
reporters); :mod:`~repro.analysis.determinism`,
:mod:`~repro.analysis.leakage`, :mod:`~repro.analysis.hygiene` and
:mod:`~repro.analysis.units` provide the domain rules.  The console
script ``pgss-lint`` (see :mod:`repro.analysis.cli`) runs them all.
"""

from __future__ import annotations

from typing import List, Type

from .core import (
    Finding,
    ModuleContext,
    Rule,
    Severity,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    max_severity,
    render_json,
    render_text,
)
from .determinism import DETERMINISM_RULES
from .hygiene import HYGIENE_RULES
from .leakage import LEAKAGE_RULES
from .units import UNITS_RULES

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "Severity",
    "default_rules",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "max_severity",
    "render_json",
    "render_text",
]


def default_rules() -> List[Rule]:
    """Fresh instances of every built-in rule, in rule-ID order."""
    classes: List[Type[Rule]] = [
        *DETERMINISM_RULES,
        *LEAKAGE_RULES,
        *HYGIENE_RULES,
        *UNITS_RULES,
    ]
    return sorted((cls() for cls in classes), key=lambda r: r.rule_id)

"""SARIF 2.1.0 reporter for ``pgss-lint``.

SARIF (Static Analysis Results Interchange Format) is what
``github/codeql-action/upload-sarif`` ingests to annotate pull requests
inline.  The document carries the same findings as the JSON reporter
plus per-rule metadata (summary and the rule class's docstring as help
text), so the annotation links explain *why* an invariant matters, not
just where it broke.

Output is deterministic: findings are sorted by
:meth:`Finding.sort_key` and rule entries by ID, and the JSON is dumped
with sorted keys — the same byte-stability contract as the JSON
reporter (DESIGN.md §10).
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .core import Finding, Severity

__all__ = ["SARIF_VERSION", "render_sarif"]

SARIF_VERSION = "2.1.0"

_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

#: simlint severities -> SARIF levels.
_LEVELS = {Severity.WARNING: "warning", Severity.ERROR: "error"}


def _rule_entry(rule_id: str, summary: str, help_text: str) -> Dict[str, object]:
    entry: Dict[str, object] = {
        "id": rule_id,
        "shortDescription": {"text": summary or rule_id},
    }
    if help_text:
        entry["fullDescription"] = {"text": help_text.strip()}
    return entry


def render_sarif(
    findings: Sequence[Finding],
    rules: Sequence[object] = (),
) -> str:
    """Render *findings* as a SARIF 2.1.0 document.

    *rules* may be any objects carrying ``rule_id``/``summary`` (and a
    docstring) — both per-module :class:`~repro.analysis.core.Rule` and
    whole-program ``ProjectRule`` instances qualify; they populate the
    driver's rule metadata so annotations link to an explanation.
    """
    ordered = sorted(findings, key=Finding.sort_key)
    by_id: Dict[str, Dict[str, object]] = {}
    for rule in rules:
        rule_id = getattr(rule, "rule_id", None)
        if not isinstance(rule_id, str):
            continue
        by_id[rule_id] = _rule_entry(
            rule_id,
            str(getattr(rule, "summary", "") or ""),
            str(type(rule).__doc__ or ""),
        )
    # Findings whose rule wasn't registered (e.g. PARSE001) still get a
    # stub entry so SARIF consumers can resolve every ruleId.
    for f in ordered:
        by_id.setdefault(f.rule_id, _rule_entry(f.rule_id, f.rule_id, ""))
    rule_entries = [by_id[k] for k in sorted(by_id)]
    rule_index = {entry["id"]: i for i, entry in enumerate(rule_entries)}

    results: List[Dict[str, object]] = []
    for f in ordered:
        region: Dict[str, object] = {
            "startLine": f.line,
            "startColumn": f.col,
        }
        if f.end_line > f.line:
            region["endLine"] = f.end_line
        results.append(
            {
                "ruleId": f.rule_id,
                "ruleIndex": rule_index[f.rule_id],
                "level": _LEVELS.get(f.severity, "error"),
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": f.path,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": region,
                        }
                    }
                ],
            }
        )

    document = {
        "$schema": _SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "pgss-lint",
                        "rules": rule_entries,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"}
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)

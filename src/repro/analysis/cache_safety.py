"""CCH1xx: cache-safety rules.

Every experiment result flows through :class:`ResultCache`: content-
hashed keys, atomic tmp+rename publication, crash quarantine, and a
strict JSON-able key discipline (DESIGN.md §9).  A direct file write
into the cache directory bypasses all four properties at once — a
concurrent run can read the torn file, and nothing records which code
version produced it.  Three rules police the boundary:

* **CCH101** — a cache-directory path (anything tainted by
  ``cache.directory`` or ``_default_cache_dir()``) reaching a raw write
  sink (``open``, ``json.dump``, ``np.savez``, ``Path.write_text``...)
  anywhere in the project.
* **CCH102** — experiment modules (``repro.experiments.*`` except the
  cache implementation itself) must not perform *any* direct file I/O;
  results leave a figure module only through ``ctx.run_cached`` /
  ``ResultCache`` so they are reproducible and concurrency-safe.
* **CCH103** — ``ExperimentCell`` parameters become JSON cache keys;
  a lambda, set/bytes literal, or function/class reference in the
  params raises ``CacheError`` only at run time — this rule moves that
  failure to lint time.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Optional, Tuple

from .callgraph import resolve_name
from .core import Finding, Severity
from .dataflow import (
    ModuleIR,
    Project,
    ProjectRule,
    VAttr,
    VCall,
    VConst,
    VName,
    VOp,
    VTuple,
    ValueExpr,
    iter_calls,
)
from .taint import TaintAnalysis, TaintSpec, call_matches

__all__ = [
    "CACHE_PATH_SPEC",
    "CacheDirWriteRule",
    "CellParamJsonRule",
    "DirectExperimentWriteRule",
]

#: The ResultCache implementation — the one module allowed to touch the
#: cache directory directly.
_CACHE_MODULE = "repro.experiments.cache"

#: Vocabulary for cache-directory path taint.
CACHE_PATH_SPEC = TaintSpec(
    spec_id="cachedir",
    source_attrs=frozenset({"directory"}),
    source_calls=frozenset({"_default_cache_dir"}),
)

#: Raw write sinks (matched on the last dotted component).
_WRITE_SINKS: FrozenSet[str] = frozenset(
    {
        "open",
        "dump",
        "savez",
        "savez_compressed",
        "save",
        "write_text",
        "write_bytes",
    }
)

#: Sinks banned outright in experiment modules (no ``save``: figure
#: helpers legitimately save rendered plots outside the cache).
_EXPERIMENT_SINKS: FrozenSet[str] = frozenset(
    {
        "open",
        "dump",
        "savez",
        "savez_compressed",
        "write_text",
        "write_bytes",
    }
)


class CacheDirWriteRule(ProjectRule):
    """CCH101: no raw file operations on cache-directory paths.

    A path derived from ``ResultCache.directory`` (or
    ``_default_cache_dir()``) reaching ``open``/``json.dump``/
    ``np.savez``/``write_text`` bypasses atomic publication: a parallel
    run can observe the half-written file, and the quarantine/versioning
    machinery never sees it.  Flow-sensitive — the taint survives
    ``dir / "name.json"`` arithmetic and helper returns.
    """

    rule_id = "CCH101"
    severity = Severity.ERROR
    summary = "raw file operation on a cache-directory path"
    scope = "closure"

    def check_module(
        self, project: Project, mir: ModuleIR
    ) -> Iterator[Finding]:
        """Flag write sinks receiving cache-path taint."""
        if mir.module == _CACHE_MODULE:
            return
        analysis = TaintAnalysis.for_project(project, CACHE_PATH_SPEC)
        for rec in analysis.records(mir):
            if not call_matches(rec.call, _WRITE_SINKS):
                continue
            if rec.any_input_tainted:
                yield self.finding(
                    mir,
                    rec.call.line,
                    rec.call.col,
                    f"`{rec.call.name}` operates on a cache-directory "
                    f"path; cache entries must go through ResultCache's "
                    f"atomic publication",
                )


class DirectExperimentWriteRule(ProjectRule):
    """CCH102: experiment modules perform no direct file I/O.

    Figure modules produce *cells*; persistence is ``ctx.run_cached``'s
    job.  A stray ``open``/``json.dump`` in an experiment module writes
    results that no cache key describes — they can't be invalidated,
    shared between parallel workers, or trusted after a crash.
    """

    rule_id = "CCH102"
    severity = Severity.ERROR
    summary = "direct file I/O in an experiment module"
    scope = "closure"

    def check_module(
        self, project: Project, mir: ModuleIR
    ) -> Iterator[Finding]:
        """Flag any raw I/O call in ``repro.experiments.*``."""
        if not mir.module.startswith("repro.experiments."):
            return
        if mir.module == _CACHE_MODULE:
            return
        for fn in mir.functions:
            for stmt in fn.body:
                value = getattr(stmt, "value", None)
                if value is None:
                    continue
                for call in iter_calls(value):
                    if call_matches(call, _EXPERIMENT_SINKS):
                        yield self.finding(
                            mir,
                            call.line,
                            call.col,
                            f"`{call.name}` writes files directly from an "
                            f"experiment module; route results through "
                            f"ctx.run_cached / ResultCache instead",
                        )


class CellParamJsonRule(ProjectRule):
    """CCH103: ``ExperimentCell`` params must be statically JSON-able.

    Cell params are serialised into the sha256 cache key; the cache
    raises ``CacheError`` on non-JSON-able values, but only when the
    cell is first run.  Lambdas, set/bytes literals, and references to
    project functions or classes are detectable statically, so the
    mistake surfaces here instead of mid-sweep.
    """

    rule_id = "CCH103"
    severity = Severity.ERROR
    summary = "non-JSON-able value in ExperimentCell params"
    scope = "closure"

    def check_module(
        self, project: Project, mir: ModuleIR
    ) -> Iterator[Finding]:
        """Inspect every cell-construction site's params."""
        for fn in mir.functions:
            for stmt in fn.body:
                value = getattr(stmt, "value", None)
                if value is None:
                    continue
                for call in iter_calls(value):
                    if not _is_cell_ctor(call):
                        continue
                    inputs: List[Tuple[str, ValueExpr]] = [
                        (f"argument {i + 1}", a)
                        for i, a in enumerate(call.args)
                    ]
                    inputs.extend(
                        (f"param `{name}`", v)
                        for name, v in call.kwargs
                        if name is not None
                    )
                    for label, expr in inputs:
                        problem = _non_jsonable(project, mir, expr)
                        if problem is not None:
                            yield self.finding(
                                mir,
                                call.line,
                                call.col,
                                f"{label} of `{call.name}` is {problem}; "
                                f"cell params become JSON cache keys and "
                                f"must be plain data",
                            )


def _is_cell_ctor(call: VCall) -> bool:
    spelled = call.name
    if spelled is None:
        return False
    tail = spelled.rsplit(".", 1)[-1]
    if tail == "ExperimentCell":
        return True
    return tail == "make" and "ExperimentCell" in spelled


def _non_jsonable(
    project: Project, mir: ModuleIR, expr: ValueExpr
) -> Optional[str]:
    """Describe why *expr* cannot be a JSON cache-key value, or None."""
    if isinstance(expr, VConst):
        if expr.kind == "lambda":
            return "a lambda"
        if expr.kind == "bytes":
            return "a bytes literal"
        return None
    if isinstance(expr, VCall):
        if expr.name == "<set-literal>":
            return "a set literal"
        return None
    if isinstance(expr, (VName, VAttr)):
        spelled = _spelled(expr)
        if spelled is None:
            return None
        resolved = resolve_name(project, mir, spelled)
        if resolved is not None:
            return f"a reference to project symbol `{spelled}`"
        return None
    if isinstance(expr, (VTuple, VOp)):
        items = expr.items if isinstance(expr, VTuple) else expr.operands
        for item in items:
            problem = _non_jsonable(project, mir, item)
            if problem is not None:
                return problem
    return None


def _spelled(expr: ValueExpr) -> Optional[str]:
    parts: List[str] = []
    node = expr
    while isinstance(node, VAttr):
        parts.append(node.attr)
        node = node.base
    if isinstance(node, VName):
        parts.append(node.name)
        return ".".join(reversed(parts))
    return None

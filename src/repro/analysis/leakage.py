"""Oracle-leakage rules: online code may not peek at the future.

The sampling techniques (``repro/sampling/``) and phase trackers
(``repro/phase/``) are *online* algorithms: at operation *t* they may
use only the stream prefix ``[0, t]``.  This is the property that makes
live-sampling systems (Pac-Sim, two-phase stratified sampling)
trustworthy, and it is exactly the property a unit test on final error
numbers cannot establish — a leaky sampler looks *better*, not broken.
So the boundary is enforced structurally:

Rule IDs
--------
LEA001  sampling/phase module imports the experiment harness
LEA002  sampling/phase module calls a full-run / ground-truth API
LEA003  stream lookahead (``itertools.tee`` or materialising a stream)

``repro/sampling/full.py`` is exempt from LEA002: it *defines* the
reference oracle the experiments compare against.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Type

from .core import Finding, ModuleContext, Rule, Severity, dotted_name

__all__ = [
    "LEAKAGE_RULES",
    "ExperimentImportRule",
    "OracleCallRule",
    "StreamLookaheadRule",
]

#: Sub-packages whose modules must be online (no oracle access).
ONLINE_SUBPACKAGES = ("sampling", "phase")

#: Callables that expose full-run ground truth.
ORACLE_CALLS = frozenset(
    {
        "collect_reference_trace",
        "ground_truth",
        "oracle_ipc",
        "reference_trace",
    }
)

#: Attributes that expose full-run ground truth.
ORACLE_ATTRIBUTES = frozenset({"true_ipc", "ground_truth"})

#: Module basenames exempt from LEA002 (they *are* the oracle).
_ORACLE_DEFINING_MODULES = frozenset({"full"})


def _is_online_module(ctx: ModuleContext) -> bool:
    return ctx.in_subpackage(*ONLINE_SUBPACKAGES)


class ExperimentImportRule(Rule):
    """LEA001: online code importing the experiment harness."""

    rule_id = "LEA001"
    severity = Severity.ERROR
    summary = "online sampling/phase code imports repro.experiments"

    @staticmethod
    def _imports_experiments(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[:2] == ["repro", "experiments"]:
                    return alias.name
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            top = module.split(".")[0] if module else ""
            if module.split(".")[:2] == ["repro", "experiments"]:
                return module
            if node.level >= 1 and top == "experiments":
                return "." * node.level + module
            if node.level >= 1 and not module:
                for alias in node.names:
                    if alias.name == "experiments":
                        return "." * node.level + alias.name
        return None

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _is_online_module(ctx):
            return
        for node in ast.walk(ctx.tree):
            imported = self._imports_experiments(node)
            if imported is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"import of {imported!r}: online sampling/phase code "
                    "must not depend on the experiment harness (oracle "
                    "territory)",
                )


class OracleCallRule(Rule):
    """LEA002: online code touching full-run / ground-truth APIs."""

    rule_id = "LEA002"
    severity = Severity.ERROR
    summary = "online sampling/phase code calls a ground-truth API"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _is_online_module(ctx):
            return
        if ctx.module_name in _ORACLE_DEFINING_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and name.split(".")[-1] in ORACLE_CALLS:
                    yield self.finding(
                        ctx,
                        node,
                        f"call to {name}(): an online technique may not "
                        "consult full-run ground truth while sampling",
                    )
            elif isinstance(node, ast.Attribute):
                if node.attr in ORACLE_ATTRIBUTES and isinstance(
                    node.ctx, ast.Load
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"access to .{node.attr}: full-run ground truth is "
                        "off limits to online sampling/phase code",
                    )


class StreamLookaheadRule(Rule):
    """LEA003: lookahead on a program stream.

    ``itertools.tee`` lets code consume a copy of the stream ahead of
    the simulated cursor, and ``list(stream)`` materialises the whole
    future at once — both are oracle access in disguise.
    """

    rule_id = "LEA003"
    severity = Severity.ERROR
    summary = "stream lookahead in online sampling/phase code"

    _MATERIALISERS = frozenset({"list", "tuple"})

    @staticmethod
    def _names_a_stream(node: ast.AST) -> bool:
        name = dotted_name(node)
        return name is not None and "stream" in name.split(".")[-1].lower()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _is_online_module(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name == "itertools.tee" or name.split(".")[-1] == "tee":
                yield self.finding(
                    ctx,
                    node,
                    "itertools.tee() forks the stream and permits reading "
                    "ahead of the simulated cursor",
                )
            elif (
                name in self._MATERIALISERS
                and len(node.args) == 1
                and self._names_a_stream(node.args[0])
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() materialises the whole stream — the future "
                    "of the stream is not observable online",
                )


LEAKAGE_RULES: List[Type[Rule]] = [
    ExperimentImportRule,
    OracleCallRule,
    StreamLookaheadRule,
]

"""Determinism rules: every run must be a pure function of its seed.

Bit-reproducibility is the first invariant the paper's evaluation rests
on — two runs with the same (workload, config, seed) must produce the
same estimate, or reported errors are noise.  These rules reject the
usual ways nondeterminism creeps into Python simulators: RNGs drawing
from hidden global state, wall-clock reads, and iteration orders that
depend on ``PYTHONHASHSEED``.

Rule IDs
--------
DET001  RNG constructed or reseeded without an explicit seed
DET002  module-level ``random.*`` call (hidden shared global state)
DET003  legacy ``numpy.random.*`` API instead of a ``Generator``
DET004  wall-clock read (``time.time``, ``datetime.now``, ...)
DET005  host monotonic timing (``perf_counter``, ...) — warning
DET006  iteration over a set where element order escapes
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple, Type

from .core import Finding, ModuleContext, Rule, Severity, dotted_name

__all__ = [
    "DETERMINISM_RULES",
    "HostTimingRule",
    "LegacyNumpyRandomRule",
    "ModuleLevelRandomRule",
    "SetOrderEscapeRule",
    "UnseededRngRule",
    "WallClockRule",
]

#: ``random`` module functions that mutate/read the hidden global RNG.
_GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "betavariate",
        "binomialvariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: Names under ``numpy.random`` that belong to the *new* Generator API.
_NUMPY_GENERATOR_API = frozenset(
    {
        "BitGenerator",
        "Generator",
        "MT19937",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "SeedSequence",
        "default_rng",
    }
)

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_HOST_TIMING_CALLS = frozenset(
    {
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.thread_time",
        "time.thread_time_ns",
    }
)


def _call_name(node: ast.Call) -> Optional[str]:
    return dotted_name(node.func)


class UnseededRngRule(Rule):
    """DET001: an RNG constructed (or reseeded) without an explicit seed."""

    rule_id = "DET001"
    severity = Severity.ERROR
    summary = "RNG constructed without an explicit seed"

    _CONSTRUCTORS = frozenset(
        {
            "random.Random",
            "Random",
            "random.seed",
            "np.random.default_rng",
            "numpy.random.default_rng",
            "default_rng",
        }
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in self._CONSTRUCTORS and not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() takes its seed from OS entropy; pass an "
                    "explicit seed so runs are reproducible",
                )


class ModuleLevelRandomRule(Rule):
    """DET002: module-level ``random.*`` draws from hidden global state."""

    rule_id = "DET002"
    severity = Severity.ERROR
    summary = "module-level random.* call uses hidden global state"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name is None:
                continue
            parts = name.split(".")
            if (
                len(parts) == 2
                and parts[0] == "random"
                and parts[1] in _GLOBAL_RANDOM_FUNCS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() uses the interpreter-global RNG; draw from "
                    "a random.Random(seed) instance owned by the caller",
                )


class LegacyNumpyRandomRule(Rule):
    """DET003: legacy ``numpy.random`` API (global ``RandomState``)."""

    rule_id = "DET003"
    severity = Severity.ERROR
    summary = "legacy numpy.random API instead of a seeded Generator"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name is None:
                continue
            parts = name.split(".")
            if (
                len(parts) == 3
                and parts[0] in ("np", "numpy")
                and parts[1] == "random"
                and parts[2] not in _NUMPY_GENERATOR_API
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() drives numpy's legacy global RandomState; "
                    "use np.random.default_rng(seed) and pass the "
                    "Generator explicitly",
                )


class WallClockRule(Rule):
    """DET004: wall-clock reads make runs depend on when they execute."""

    rule_id = "DET004"
    severity = Severity.ERROR
    summary = "wall-clock read in simulation code"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in _WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() reads the wall clock; simulated state must "
                    "be a function of (workload, config, seed) only",
                )


class HostTimingRule(Rule):
    """DET005: monotonic host timers — legitimate only for rate reporting.

    ``perf_counter`` and friends cannot leak absolute time, but any value
    they produce still differs between hosts and runs.  Measuring
    simulator throughput is fine; suppress those sites with
    ``# simlint: disable=DET005``.  Everything else is suspect.
    """

    rule_id = "DET005"
    severity = Severity.WARNING
    summary = "host timing call; must not influence simulated state"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in _HOST_TIMING_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() measures host time; acceptable only for "
                    "rate reporting — suppress with a justification if so",
                )


class SetOrderEscapeRule(Rule):
    """DET006: set iteration order escaping into results.

    Set iteration order depends on ``PYTHONHASHSEED`` for str keys, so
    ``for x in {...}`` or ``list(set(...))`` can reorder samples between
    runs.  Wrap the set in ``sorted(...)`` before iterating.
    """

    rule_id = "DET006"
    severity = Severity.ERROR
    summary = "iteration over a set where element order escapes"

    _MATERIALISERS = frozenset({"list", "tuple", "enumerate", "iter"})

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            return name in ("set", "frozenset")
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        message = (
            "iteration order of a set depends on PYTHONHASHSEED; "
            "wrap it in sorted(...) before iterating"
        )
        for node in ast.walk(ctx.tree):
            iters: List[Tuple[ast.AST, ast.AST]] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append((node, node.iter))
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                iters.extend((gen.iter, gen.iter) for gen in node.generators)
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in self._MATERIALISERS and len(node.args) >= 1:
                    iters.append((node, node.args[0]))
            for report_node, iter_expr in iters:
                if self._is_set_expr(iter_expr):
                    yield self.finding(ctx, report_node, message)


DETERMINISM_RULES: List[Type[Rule]] = [
    UnseededRngRule,
    ModuleLevelRandomRule,
    LegacyNumpyRandomRule,
    WallClockRule,
    HostTimingRule,
    SetOrderEscapeRule,
]

"""Interprocedural taint engine over the dataflow IR.

The engine is a classic two-pass summary analysis:

1. **Bottom-up summaries** (fixpoint): every function gets a
   :class:`TaintSummary` saying whether its return value is tainted
   *intrinsically* (a source is read inside it) and which of its
   parameters flow to the return value.  Taint is tracked symbolically
   as token sets — the literal token ``"T"`` plus integer parameter
   indices — so one pass per function serves every caller.
2. **Top-down parameter taint** (fixpoint): actual taint is pushed into
   callee parameters from resolved call sites, so a helper that merely
   *forwards* an oracle value taints its callers' downstream uses.

The result is a list of :class:`CallTaintRecord` per module — every
call site annotated with the concrete taint of its arguments, keyword
arguments, receiver, and result.  Rule families (oracle flow, RNG
provenance, cache safety) consume those records and match their own
source/sink vocabularies; the engine itself knows nothing about rules.

Unknown callees conservatively propagate the union of their argument
taints to their result (``propagate_unknown_calls``) — this is what
catches laundering through builtins like ``float()`` or ``min()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple, Union

from .callgraph import build_call_graph, resolve_call
from .dataflow import (
    FuncIR,
    ModuleIR,
    Project,
    SAssign,
    SExpr,
    SReturn,
    TargetSpec,
    VAttr,
    VCall,
    VConst,
    VName,
    VOp,
    VTuple,
    ValueExpr,
)

__all__ = [
    "CallTaintRecord",
    "TaintAnalysis",
    "TaintSpec",
    "TaintSummary",
    "call_matches",
]

#: Symbolic taint token: the intrinsic marker or a parameter index.
Token = Union[str, int]
Tokens = FrozenSet[Token]

_EMPTY: Tokens = frozenset()
_INTRINSIC: Tokens = frozenset({"T"})

#: Fixpoint round cap; generous for the repo's call-graph depth.
_MAX_ROUNDS = 20


@dataclass(frozen=True)
class TaintSpec:
    """What counts as a taint source for one analysis family.

    ``source_calls`` entries match a call's spelled name in full or by
    its last dotted component (so ``"true_ipc"`` matches
    ``ctx.true_ipc(...)`` on any receiver).  ``source_attrs`` match
    attribute loads by attribute name.  ``source_params`` maps function
    qnames to parameter names that are taint roots.
    """

    spec_id: str
    source_attrs: FrozenSet[str] = frozenset()
    source_calls: FrozenSet[str] = frozenset()
    source_params: Tuple[Tuple[str, str], ...] = ()
    propagate_unknown_calls: bool = True


@dataclass(frozen=True)
class TaintSummary:
    """One function's effect on taint: intrinsic + parameter flows."""

    intrinsic: bool = False
    from_params: FrozenSet[int] = frozenset()


@dataclass(frozen=True)
class CallTaintRecord:
    """One call site annotated with concrete taint facts."""

    module: str
    fn_qname: str
    call: VCall
    callee: Optional[str]
    args: Tuple[bool, ...]
    kwargs: Tuple[Tuple[Optional[str], bool], ...]
    base_tainted: bool
    result_tainted: bool

    @property
    def any_input_tainted(self) -> bool:
        """True when any argument/kwarg/receiver carries taint."""
        return (
            self.base_tainted
            or any(self.args)
            or any(t for _, t in self.kwargs)
        )


def call_matches(call: VCall, names: FrozenSet[str]) -> bool:
    """True when the call's spelled name matches *names* (full or tail)."""
    spelled = call.name
    if spelled is None:
        return False
    if spelled in names:
        return True
    tail = spelled.rsplit(".", 1)[-1]
    return tail in names


@dataclass(frozen=True)
class _SymbolicCall:
    """Per-call symbolic token sets gathered during the summary walk."""

    fn_qname: str
    call: VCall
    callee: Optional[str]
    args: Tuple[Tokens, ...]
    kwargs: Tuple[Tuple[Optional[str], Tokens], ...]
    base: Tokens
    result: Tokens


class TaintAnalysis:
    """Run one :class:`TaintSpec` over a project and expose call records.

    Results are memoised on ``project.memo`` under the spec id, so
    several rules sharing a vocabulary pay for one analysis.
    """

    def __init__(self, project: Project, spec: TaintSpec) -> None:
        self.project = project
        self.spec = spec
        self.graph = build_call_graph(project)
        self.summaries: Dict[str, TaintSummary] = {}
        self.param_taint: Dict[str, Set[int]] = {}
        self._calls: Dict[str, List[_SymbolicCall]] = {}
        self._root_params: Dict[str, Set[str]] = {}
        for qname, param in spec.source_params:
            self._root_params.setdefault(qname, set()).add(param)
        self._fixpoint_summaries()
        self._record_calls()
        self._fixpoint_param_taint()

    @classmethod
    def for_project(cls, project: Project, spec: TaintSpec) -> "TaintAnalysis":
        """Memoised constructor."""
        key = f"taint:{spec.spec_id}"
        cached = project.memo.get(key)
        if isinstance(cached, cls):
            return cached
        analysis = cls(project, spec)
        project.memo[key] = analysis
        return analysis

    # -- symbolic evaluation -------------------------------------------

    def _param_tokens(self, fn: FuncIR) -> Dict[str, Tokens]:
        env: Dict[str, Tokens] = {}
        roots = self._root_params.get(fn.qname, set())
        for i, name in enumerate(fn.params):
            tokens: Tokens = frozenset({i})
            if name in roots:
                tokens = tokens | _INTRINSIC
            env[name] = tokens
        return env

    def _eval(
        self,
        expr: ValueExpr,
        env: Dict[str, Tokens],
        fn: FuncIR,
        mir: ModuleIR,
        sink: Optional[List[_SymbolicCall]],
    ) -> Tokens:
        if isinstance(expr, VConst):
            return _EMPTY
        if isinstance(expr, VName):
            return env.get(expr.name, _EMPTY)
        if isinstance(expr, VAttr):
            base = self._eval(expr.base, env, fn, mir, sink)
            if expr.attr in self.spec.source_attrs:
                return base | _INTRINSIC
            return base
        if isinstance(expr, VTuple):
            out: Tokens = _EMPTY
            for item in expr.items:
                out = out | self._eval(item, env, fn, mir, sink)
            return out
        if isinstance(expr, VOp):
            out = _EMPTY
            for item in expr.operands:
                out = out | self._eval(item, env, fn, mir, sink)
            return out
        if isinstance(expr, VCall):
            return self._eval_call(expr, env, fn, mir, sink)
        return _EMPTY

    def _eval_call(
        self,
        call: VCall,
        env: Dict[str, Tokens],
        fn: FuncIR,
        mir: ModuleIR,
        sink: Optional[List[_SymbolicCall]],
    ) -> Tokens:
        args = tuple(self._eval(a, env, fn, mir, sink) for a in call.args)
        kwargs = tuple(
            (name, self._eval(value, env, fn, mir, sink))
            for name, value in call.kwargs
        )
        base: Tokens = _EMPTY
        if isinstance(call.func, VAttr):
            base = self._eval(call.func.base, env, fn, mir, sink)
        callee = resolve_call(self.project, mir, fn, call)
        result: Tokens = _EMPTY
        if call_matches(call, self.spec.source_calls):
            result = result | _INTRINSIC
        if callee is not None:
            summary = self.summaries.get(callee, TaintSummary())
            if summary.intrinsic:
                result = result | _INTRINSIC
            if summary.from_params:
                callee_fn = self._function(callee)
                offset = _self_offset(callee_fn, call)
                for idx in summary.from_params:
                    pos = idx - offset
                    if 0 <= pos < len(args):
                        result = result | args[pos]
                    elif callee_fn is not None and idx < len(callee_fn.params):
                        pname = callee_fn.params[idx]
                        for kw_name, tokens in kwargs:
                            if kw_name == pname:
                                result = result | tokens
                    elif pos < 0:
                        # taint through ``self`` — approximate with the
                        # receiver's taint.
                        result = result | base
        elif self.spec.propagate_unknown_calls:
            result = result | base
            for tokens in args:
                result = result | tokens
            for _, tokens in kwargs:
                result = result | tokens
        if sink is not None:
            sink.append(
                _SymbolicCall(
                    fn_qname=fn.qname,
                    call=call,
                    callee=callee,
                    args=args,
                    kwargs=kwargs,
                    base=base,
                    result=result,
                )
            )
        return result

    def _function(self, qname: str) -> Optional[FuncIR]:
        module_name = qname
        while module_name:
            module_name = module_name.rpartition(".")[0]
            target = self.project.by_module.get(module_name)
            if target is not None:
                return target.function(qname)
        return None

    def _walk(
        self,
        fn: FuncIR,
        mir: ModuleIR,
        env: Dict[str, Tokens],
        sink: Optional[List[_SymbolicCall]],
    ) -> Tokens:
        """Walk *fn*'s body; returns the union of returned token sets."""
        returned: Tokens = _EMPTY
        for stmt in fn.body:
            if isinstance(stmt, SAssign):
                if isinstance(stmt.value, VTuple):
                    elems: Optional[Tuple[Tokens, ...]] = tuple(
                        self._eval(item, env, fn, mir, sink)
                        for item in stmt.value.items
                    )
                    tokens = _EMPTY
                    for t in elems or ():
                        tokens = tokens | t
                else:
                    elems = None
                    tokens = self._eval(stmt.value, env, fn, mir, sink)
                for target in stmt.targets:
                    _bind(target, tokens, elems, env)
            elif isinstance(stmt, SReturn):
                if stmt.value is not None:
                    returned = returned | self._eval(
                        stmt.value, env, fn, mir, sink
                    )
            elif isinstance(stmt, SExpr):
                self._eval(stmt.value, env, fn, mir, sink)
        return returned

    # -- phases ---------------------------------------------------------

    def _fixpoint_summaries(self) -> None:
        for _ in range(_MAX_ROUNDS):
            changed = False
            for mir in self.project.modules:
                for fn in mir.functions:
                    env = self._param_tokens(fn)
                    returned = self._walk(fn, mir, env, None)
                    summary = TaintSummary(
                        intrinsic="T" in returned,
                        from_params=frozenset(
                            t for t in returned if isinstance(t, int)
                        ),
                    )
                    if self.summaries.get(fn.qname) != summary:
                        self.summaries[fn.qname] = summary
                        changed = True
            if not changed:
                break

    def _record_calls(self) -> None:
        for mir in self.project.modules:
            records: List[_SymbolicCall] = []
            for fn in mir.functions:
                env = self._param_tokens(fn)
                self._walk(fn, mir, env, records)
            self._calls[mir.module] = records

    def _concrete(self, tokens: Tokens, caller: str) -> bool:
        if "T" in tokens:
            return True
        tainted = self.param_taint.get(caller)
        if not tainted:
            return False
        return any(t in tainted for t in tokens if isinstance(t, int))

    def _fixpoint_param_taint(self) -> None:
        for _ in range(_MAX_ROUNDS):
            changed = False
            for records in self._calls.values():
                for rec in records:
                    if rec.callee is None:
                        continue
                    callee_fn = self._function(rec.callee)
                    if callee_fn is None:
                        continue
                    offset = _self_offset(callee_fn, rec.call)
                    slots = self.param_taint.setdefault(rec.callee, set())
                    for pos, tokens in enumerate(rec.args):
                        idx = pos + offset
                        if idx < len(callee_fn.params) and idx not in slots:
                            if self._concrete(tokens, rec.fn_qname):
                                slots.add(idx)
                                changed = True
                    for kw_name, tokens in rec.kwargs:
                        if kw_name is None:
                            continue
                        if kw_name in callee_fn.params:
                            idx = callee_fn.params.index(kw_name)
                            if idx not in slots and self._concrete(
                                tokens, rec.fn_qname
                            ):
                                slots.add(idx)
                                changed = True
            if not changed:
                break

    # -- public API -----------------------------------------------------

    def records(self, mir: ModuleIR) -> Iterator[CallTaintRecord]:
        """Concrete taint records for every call site in *mir*."""
        for rec in self._calls.get(mir.module, []):
            yield CallTaintRecord(
                module=mir.module,
                fn_qname=rec.fn_qname,
                call=rec.call,
                callee=rec.callee,
                args=tuple(
                    self._concrete(t, rec.fn_qname) for t in rec.args
                ),
                kwargs=tuple(
                    (name, self._concrete(t, rec.fn_qname))
                    for name, t in rec.kwargs
                ),
                base_tainted=self._concrete(rec.base, rec.fn_qname),
                result_tainted=self._concrete(rec.result, rec.fn_qname),
            )


def _self_offset(callee_fn: Optional[FuncIR], call: VCall) -> int:
    """Positional offset for implicit ``self``/``cls`` receivers."""
    if callee_fn is None or not callee_fn.params:
        return 0
    if callee_fn.params[0] in ("self", "cls") and (
        callee_fn.is_method or callee_fn.name == "__init__"
    ):
        # ``Class(...)`` and ``obj.m(...)`` both omit the receiver.
        return 1
    return 0


def _bind(
    target: TargetSpec,
    tokens: Tokens,
    elems: Optional[Tuple[Tokens, ...]],
    env: Dict[str, Tokens],
) -> None:
    """Bind an assignment target, unpacking tuple structure when present.

    *elems* carries per-element token sets when the right-hand side was
    a tuple display of matching arity; otherwise every unpacked name
    receives the combined *tokens* (sound over-approximation).
    """
    kind = target[0]
    if kind == "name":
        env[str(target[1])] = tokens
    elif kind == "tuple":
        subtargets = target[1]
        if elems is not None and len(elems) == len(subtargets):
            for sub, sub_tokens in zip(subtargets, elems):
                _bind(sub, sub_tokens, None, env)
        else:
            for sub in subtargets:
                _bind(sub, tokens, None, env)

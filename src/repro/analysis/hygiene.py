"""Hygiene rules: conventions the framework relies on everywhere.

These are not style nits; each encodes a contract other code depends
on.  Callers catch :class:`repro.errors.ReproError` to distinguish
framework failures from programming mistakes, so raising a bare builtin
breaks error handling at a distance.  Mutable defaults alias state
between calls (and between *runs*, breaking reproducibility).  Missing
``__all__`` makes ``import *`` and the public-API tests nondeterministic
about what they see.  ``object.__setattr__`` on a foreign frozen
dataclass silently voids its immutability guarantee.

Rule IDs
--------
HYG001  raise of a non-ReproError exception inside ``src/repro/``
HYG002  mutable default argument
HYG003  public module without ``__all__``
HYG004  frozen-dataclass mutation via ``object.__setattr__`` on a
        target other than ``self``
HYG005  literal engine-mode scheduling (``.run(Mode.X, ...)`` /
        ``.run_to_end(Mode.X, ...)``) outside the sampling-session
        kernel
HYG006  direct figure entry-point call (``figXX.run(ctx)``) outside the
        experiment service's sanctioned assembly paths
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Type

from .core import Finding, ModuleContext, Rule, Severity, dotted_name

__all__ = [
    "HYGIENE_RULES",
    "EngineModeEscapeRule",
    "FigureEntrypointRule",
    "ForeignFrozenMutationRule",
    "MissingAllRule",
    "MutableDefaultRule",
    "NonReproRaiseRule",
]

#: Builtin exception types that must not be raised by framework code.
_FORBIDDEN_RAISES = frozenset(
    {
        "ArithmeticError",
        "AssertionError",
        "AttributeError",
        "BaseException",
        "Exception",
        "IOError",
        "IndexError",
        "KeyError",
        "LookupError",
        "OSError",
        "RuntimeError",
        "StopIteration",
        "TypeError",
        "ValueError",
        "ZeroDivisionError",
    }
)


class NonReproRaiseRule(Rule):
    """HYG001: deliberate raises must use the ReproError hierarchy.

    ``NotImplementedError`` (abstract-method stubs) is always allowed,
    and ``StopIteration`` is allowed inside ``__next__`` where the
    iterator protocol requires it.
    """

    rule_id = "HYG001"
    severity = Severity.ERROR
    summary = "raise of a non-ReproError exception in framework code"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        yield from self._visit(ctx, ctx.tree, None)

    def _visit(
        self, ctx: ModuleContext, node: ast.AST, func_name: Optional[str]
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._visit(ctx, child, child.name)
                continue
            if isinstance(child, ast.Raise) and child.exc is not None:
                exc = child.exc
                if isinstance(exc, ast.Call):
                    exc = exc.func
                name = dotted_name(exc)
                base = name.split(".")[-1] if name else None
                if base == "StopIteration" and func_name == "__next__":
                    pass
                elif base in _FORBIDDEN_RAISES:
                    yield self.finding(
                        ctx,
                        child,
                        f"raise of builtin {base}; raise a ReproError "
                        "subclass so callers can catch framework errors "
                        "without swallowing programming mistakes",
                    )
            yield from self._visit(ctx, child, func_name)


class MutableDefaultRule(Rule):
    """HYG002: mutable default arguments alias state across calls."""

    rule_id = "HYG002"
    severity = Severity.ERROR
    summary = "mutable default argument"

    @staticmethod
    def _is_mutable_default(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return dotted_name(node.func) in ("list", "dict", "set")
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable_default(default):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default in {node.name}(); it is shared "
                        "between every call — default to None and create "
                        "the container inside the function",
                    )


class MissingAllRule(Rule):
    """HYG003: public modules must declare ``__all__``.

    A module counts as public when its name has no leading underscore
    and it defines at least one public function or class at top level.
    """

    rule_id = "HYG003"
    severity = Severity.WARNING
    summary = "public module without __all__"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module_name.startswith("_"):
            return
        has_public_def = False
        for node in ctx.tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ) and not node.name.startswith("_"):
                has_public_def = True
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == "__all__":
                        return
            if isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Name
            ) and node.target.id == "__all__":
                return
        if has_public_def:
            yield self.finding(
                ctx,
                ctx.tree.body[0] if ctx.tree.body else ctx.tree,
                "public module defines names but no __all__; the public "
                "surface must be explicit",
            )


class ForeignFrozenMutationRule(Rule):
    """HYG004: ``object.__setattr__`` on anything other than ``self``.

    Inside a frozen dataclass, ``object.__setattr__(self, ...)`` is the
    sanctioned idiom for ``__post_init__`` and lazy caches.  Applied to
    any *other* object it mutates state the type system promised was
    immutable — construct a new instance instead.
    """

    rule_id = "HYG004"
    severity = Severity.ERROR
    summary = "frozen-dataclass mutation from outside the instance"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if dotted_name(node.func) != "object.__setattr__":
                continue
            if node.args and isinstance(node.args[0], ast.Name) and (
                node.args[0].id == "self"
            ):
                continue
            yield self.finding(
                ctx,
                node,
                "object.__setattr__ on a target other than self mutates "
                "a frozen dataclass from outside; pass the value through "
                "the constructor or use dataclasses.replace",
            )


class EngineModeEscapeRule(Rule):
    """HYG005: literal mode schedules belong to the sampling-session kernel.

    Every sampled-simulation technique schedules engine modes through
    :class:`repro.sampling.session.SamplingSession` (a plan of
    ``ModeSegment`` entries), which is what keeps accounting, event emission,
    and batched dispatch uniform.  A call like ``engine.run(Mode.DETAIL,
    n)`` anywhere else re-opens the pre-kernel world where each
    technique hand-rolled its own loop, so it is flagged.  Generic
    drivers that *forward* a mode variable (``engine.run(mode, n)``)
    are fine — the rule only fires on literal ``Mode.X`` attributes.
    """

    rule_id = "HYG005"
    severity = Severity.ERROR
    summary = "literal engine-mode scheduling outside repro.sampling.session"

    _METHODS = frozenset({"run", "run_to_end"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.in_subpackage("sampling") and ctx.module_name == "session":
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in self._METHODS:
                continue
            arg_name = dotted_name(node.args[0])
            if arg_name is None:
                continue
            parts = arg_name.split(".")
            if len(parts) < 2 or parts[-2] != "Mode":
                continue
            yield self.finding(
                ctx,
                node,
                f"direct engine scheduling .{func.attr}({arg_name}, ...); "
                "express the schedule as a ModeSegment plan run by "
                "repro.sampling.session.SamplingSession",
            )


class FigureEntrypointRule(Rule):
    """HYG006: figure ``run()`` entry points go through the service.

    Direct ``figXX.run(ctx)`` calls bypass
    :class:`repro.fleet.ExperimentService` — they neither participate in
    the job queue's retry/lease accounting nor in cell-level caching
    decisions, and the runtime shim already deprecates them
    (:func:`repro.experiments.runner.figure_entry`).  This is the static
    counterpart: it flags calls to a figure module's ``run`` reached via
    any import spelling.  The ``experiments`` package itself (report
    assembly, cell execution) and the ``fleet`` package are the
    sanctioned in-scope callers and are exempt.
    """

    rule_id = "HYG006"
    severity = Severity.WARNING
    summary = "direct figure entry-point call outside the experiment service"

    #: Experiments modules exposing a deprecated ``run(ctx)`` entry point.
    _FIGURE_MODULE = re.compile(r"^(fig\d{2}_\w+|tradeoff|stratification_gain)$")

    def _collect_aliases(
        self, tree: ast.AST
    ) -> "tuple[Set[str], Dict[str, str]]":
        """Local names bound to figure modules / their ``run`` functions."""
        module_aliases: Set[str] = set()
        run_aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    base = alias.name.split(".")[-1]
                    if self._FIGURE_MODULE.match(base) and alias.asname:
                        module_aliases.add(alias.asname)
            elif isinstance(node, ast.ImportFrom):
                from_figure = bool(
                    node.module
                    and self._FIGURE_MODULE.match(node.module.split(".")[-1])
                )
                for alias in node.names:
                    if self._FIGURE_MODULE.match(alias.name):
                        module_aliases.add(alias.asname or alias.name)
                    elif from_figure and alias.name == "run":
                        local = alias.asname or alias.name
                        run_aliases[local] = node.module.split(".")[-1]
        return module_aliases, run_aliases

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.in_subpackage("experiments") or ctx.in_subpackage("fleet"):
            return
        module_aliases, run_aliases = self._collect_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            target: Optional[str] = None
            if isinstance(func, ast.Attribute) and func.attr == "run":
                owner = dotted_name(func.value)
                if owner is None:
                    continue
                base = owner.split(".")[-1]
                if base in module_aliases or self._FIGURE_MODULE.match(base):
                    target = f"{base}.run"
            elif isinstance(func, ast.Name) and func.id in run_aliases:
                target = f"{run_aliases[func.id]}.run"
            if target is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"direct figure entry-point call {target}(); submit the "
                    "figure through repro.fleet.ExperimentService "
                    "(service.submit/fetch) so it runs under the job "
                    "service's caching, retry, and lease accounting",
                )


HYGIENE_RULES: List[Type[Rule]] = [
    NonReproRaiseRule,
    MutableDefaultRule,
    MissingAllRule,
    ForeignFrozenMutationRule,
    EngineModeEscapeRule,
    FigureEntrypointRule,
]

"""DET1xx: RNG provenance rules.

The reproduction's determinism story is that every random draw traces
back to a seeded origin — ultimately the per-cell sha256 seed
(``ExperimentCell.seed``) or a literal in a workload generator.  The
syntactic DET001-004 rules ban the obvious global entry points
(``np.random.seed``, bare ``random.random()``); these rules reason
about *where seeds come from*:

* **DET101** — every RNG construction (``random.Random``,
  ``np.random.default_rng``, ``SeedSequence``) must receive a value the
  must-analysis can prove seed-derived: an integer/str literal, a
  parameter or attribute whose name contains ``seed``, arithmetic over
  such values, or a helper function whose returns are all seed-derived.
  No argument (or ``None``) is an unseeded RNG pulling OS entropy.
* **DET102** — RNG objects must not be stored in module globals (or
  class attributes): a shared generator couples the draw sequence of
  every experiment cell that imports it, breaking per-cell replay.
* **DET103** — drawing from a module-global RNG inside the measured
  layers (``repro.cpu``, ``repro.program``, ``repro.signals``, and the
  legacy ``repro.bbv`` facade) perturbs the instruction stream that
  ``SegmentRole.MEASURE`` segments account, so snapshot byte-identity no
  longer holds between runs.

The seed-provenance check is interprocedural through helper *returns*
(a ``derive_seed()`` helper is fine) but deliberately a must-analysis:
anything it cannot prove seed-derived is flagged.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, Optional, Set

from .callgraph import resolve_name
from .core import Finding, Severity
from .dataflow import (
    MODULE_BODY,
    FuncIR,
    ModuleIR,
    Project,
    ProjectRule,
    SAssign,
    SReturn,
    VAttr,
    VCall,
    VConst,
    VName,
    VOp,
    VTuple,
    ValueExpr,
    iter_calls,
)
from .taint import call_matches

__all__ = [
    "RNG_CTORS",
    "GlobalRngRule",
    "MeasurePathDrawRule",
    "UnseededRngRule",
    "rng_ctor_calls",
]

#: Constructor names (matched on the last dotted component).
RNG_CTORS: FrozenSet[str] = frozenset({"Random", "default_rng", "SeedSequence"})

#: Builtins that preserve seed-provenance when all arguments have it.
_SEED_PRESERVING_CALLS: FrozenSet[str] = frozenset(
    {"int", "abs", "hash", "min", "max", "from_bytes"}
)

#: Literal kinds acceptable as seeds.
_SEED_LITERALS: FrozenSet[str] = frozenset({"int", "str", "bytes"})

#: Packages whose code executes inside measured segments.  ``signals``
#: is the phase-signal layer (BBV/MAV trackers attached to the engine);
#: ``bbv`` is its legacy re-export facade.
_MEASURE_PACKAGES: FrozenSet[str] = frozenset(
    {"cpu", "program", "bbv", "signals"}
)

_SEED_MEMO = "rng:seed_analysis"


def rng_ctor_calls(fn: FuncIR) -> Iterator[VCall]:
    """Every RNG-constructor call site in *fn* (in body order)."""
    for stmt in fn.body:
        value = getattr(stmt, "value", None)
        if value is None:
            continue
        for call in iter_calls(value):
            if call_matches(call, RNG_CTORS):
                yield call


class _SeedAnalysis:
    """Must-analysis of seed provenance, shared by the DET1xx rules.

    ``summaries[qname]`` is True when every return statement of the
    function yields a provably seed-derived value; computed as an
    increasing fixpoint so seed helpers may call each other.
    """

    def __init__(self, project: Project) -> None:
        self.project = project
        self.summaries: Dict[str, bool] = {}
        for _ in range(10):
            changed = False
            for mir in project.modules:
                globals_env = self.module_globals(mir)
                for fn in mir.functions:
                    ok = self._returns_seed_ok(fn, mir, globals_env)
                    if self.summaries.get(fn.qname, False) != ok:
                        self.summaries[fn.qname] = ok
                        changed = True
            if not changed:
                break

    @classmethod
    def for_project(cls, project: Project) -> "_SeedAnalysis":
        cached = project.memo.get(_SEED_MEMO)
        if isinstance(cached, cls):
            return cached
        analysis = cls(project)
        project.memo[_SEED_MEMO] = analysis
        return analysis

    def module_globals(self, mir: ModuleIR) -> Dict[str, bool]:
        """Seed-provenance of module-level names."""
        body = mir.function(f"{mir.module}.{MODULE_BODY}")
        env: Dict[str, bool] = {}
        if body is None:
            return env
        for stmt in body.body:
            if isinstance(stmt, SAssign):
                ok = self.seed_ok(stmt.value, env, {}, mir)
                for target in stmt.targets:
                    if target[0] == "name":
                        env[str(target[1])] = ok
        return env

    def _returns_seed_ok(
        self, fn: FuncIR, mir: ModuleIR, globals_env: Dict[str, bool]
    ) -> bool:
        env = _param_env(fn)
        saw_return = False
        all_ok = True
        for stmt in fn.body:
            if isinstance(stmt, SAssign):
                ok = self.seed_ok(stmt.value, env, globals_env, mir)
                for target in stmt.targets:
                    if target[0] == "name":
                        env[str(target[1])] = ok
            elif isinstance(stmt, SReturn):
                saw_return = True
                if stmt.value is None or not self.seed_ok(
                    stmt.value, env, globals_env, mir
                ):
                    all_ok = False
        return saw_return and all_ok

    def seed_ok(
        self,
        expr: ValueExpr,
        env: Dict[str, bool],
        globals_env: Dict[str, bool],
        mir: ModuleIR,
    ) -> bool:
        """True only when *expr* is provably seed-derived."""
        if isinstance(expr, VConst):
            return expr.kind in _SEED_LITERALS
        if isinstance(expr, VName):
            if expr.name in env:
                return env[expr.name]
            return globals_env.get(expr.name, False)
        if isinstance(expr, VAttr):
            return "seed" in expr.attr.lower()
        if isinstance(expr, (VOp, VTuple)):
            items = expr.operands if isinstance(expr, VOp) else expr.items
            return bool(items) and all(
                self.seed_ok(item, env, globals_env, mir) for item in items
            )
        if isinstance(expr, VCall):
            if call_matches(expr, _SEED_PRESERVING_CALLS):
                inputs = list(expr.args) + [v for _, v in expr.kwargs]
                return bool(inputs) and all(
                    self.seed_ok(item, env, globals_env, mir)
                    for item in inputs
                )
            if expr.name is not None:
                resolved = resolve_name(self.project, mir, expr.name)
                if resolved is not None:
                    return self.summaries.get(resolved, False)
            return False
        return False


def _param_env(fn: FuncIR) -> Dict[str, bool]:
    return {name: "seed" in name.lower() for name in fn.params}


class UnseededRngRule(ProjectRule):
    """DET101: RNG constructors must receive a provably seeded value.

    ``random.Random()`` or ``np.random.default_rng(None)`` pulls OS
    entropy, so two runs of the same experiment cell diverge and the
    result cache stores whichever happened first.  The argument must be
    traceable to a seed: a literal, a ``*seed*``-named parameter or
    attribute (the per-cell sha256 seed arrives as ``cell.seed``),
    arithmetic over those, or a helper whose returns are seed-derived.
    """

    rule_id = "DET101"
    severity = Severity.ERROR
    summary = "RNG constructed without provable seed provenance"
    scope = "closure"

    def check_module(
        self, project: Project, mir: ModuleIR
    ) -> Iterator[Finding]:
        """Flag RNG constructions whose seed argument is unprovable."""
        analysis = _SeedAnalysis.for_project(project)
        globals_env = analysis.module_globals(mir)
        for fn in mir.functions:
            env = _param_env(fn)
            for stmt in fn.body:
                value = getattr(stmt, "value", None)
                if value is not None:
                    for call in iter_calls(value):
                        if not call_matches(call, RNG_CTORS):
                            continue
                        problem = self._seed_problem(
                            call, analysis, env, globals_env, mir
                        )
                        if problem is not None:
                            yield self.finding(
                                mir,
                                call.line,
                                call.col,
                                f"`{call.name}` {problem}; every RNG must "
                                f"trace back to a seeded origin "
                                f"(cell.seed, a *seed* parameter, or a "
                                f"literal)",
                            )
                if isinstance(stmt, SAssign):
                    ok = analysis.seed_ok(stmt.value, env, globals_env, mir)
                    for target in stmt.targets:
                        if target[0] == "name":
                            env[str(target[1])] = ok

    @staticmethod
    def _seed_problem(
        call: VCall,
        analysis: _SeedAnalysis,
        env: Dict[str, bool],
        globals_env: Dict[str, bool],
        mir: ModuleIR,
    ) -> Optional[str]:
        inputs = list(call.args) + [v for _, v in call.kwargs]
        if not inputs:
            return "is constructed without a seed (OS entropy)"
        for item in inputs:
            if not analysis.seed_ok(item, env, globals_env, mir):
                return "receives a value with no provable seed provenance"
        return None


class GlobalRngRule(ProjectRule):
    """DET102: no RNG objects in module globals or class attributes.

    A module-level generator is shared by every experiment cell that
    imports the module, so one cell's draws shift the next cell's
    sequence — replaying a single cell no longer reproduces its result.
    RNGs must be constructed per use site from an explicit seed.
    """

    rule_id = "DET102"
    severity = Severity.ERROR
    summary = "RNG object stored in a module global / class attribute"
    scope = "closure"

    def check_module(
        self, project: Project, mir: ModuleIR
    ) -> Iterator[Finding]:
        """Flag module-level assignments that construct an RNG."""
        body = mir.function(f"{mir.module}.{MODULE_BODY}")
        if body is None:
            return
        for stmt in body.body:
            if not isinstance(stmt, SAssign):
                continue
            for call in iter_calls(stmt.value):
                if call_matches(call, RNG_CTORS):
                    yield self.finding(
                        mir,
                        stmt.line,
                        call.col,
                        f"`{call.name}` stored at module/class scope "
                        f"shares one draw sequence across every cell "
                        f"importing this module; construct RNGs locally "
                        f"from an explicit seed",
                    )
                    break


class MeasurePathDrawRule(ProjectRule):
    """DET103: no draws from global RNGs in measured-layer code.

    ``repro.cpu``, ``repro.program``, ``repro.signals`` (and the legacy
    ``repro.bbv`` facade) execute inside
    the segments that ``SegmentRole.MEASURE`` accounts.  A draw from a
    module-global generator there depends on whatever ran before the
    segment, so the measured (ops, cycles) — and any snapshot taken at a
    segment boundary — loses byte-identity between runs.
    """

    rule_id = "DET103"
    severity = Severity.ERROR
    summary = "draw from a module-global RNG on a measured path"
    scope = "closure"

    def check_module(
        self, project: Project, mir: ModuleIR
    ) -> Iterator[Finding]:
        """Flag method calls on module-global RNG names in measure code."""
        parts = mir.module.split(".")
        if len(parts) < 2 or parts[0] != "repro":
            return
        if parts[1] not in _MEASURE_PACKAGES:
            return
        global_rngs = self._global_rng_names(mir)
        if not global_rngs:
            return
        for fn in mir.functions:
            if fn.name == MODULE_BODY:
                continue
            shadowed: Set[str] = set(fn.params)
            for stmt in fn.body:
                value = getattr(stmt, "value", None)
                if value is not None:
                    for call in iter_calls(value):
                        if call.name is None or "." not in call.name:
                            continue
                        base = call.name.split(".", 1)[0]
                        if base in global_rngs and base not in shadowed:
                            yield self.finding(
                                mir,
                                call.line,
                                call.col,
                                f"`{call.name}` draws from module-global "
                                f"RNG `{base}` inside the measured layer; "
                                f"segment accounting loses run-to-run "
                                f"byte-identity",
                            )
                if isinstance(stmt, SAssign):
                    for target in stmt.targets:
                        if target[0] == "name":
                            shadowed.add(str(target[1]))

    @staticmethod
    def _global_rng_names(mir: ModuleIR) -> Set[str]:
        body = mir.function(f"{mir.module}.{MODULE_BODY}")
        names: Set[str] = set()
        if body is None:
            return names
        for stmt in body.body:
            if not isinstance(stmt, SAssign):
                continue
            if any(
                call_matches(call, RNG_CTORS)
                for call in iter_calls(stmt.value)
            ):
                for target in stmt.targets:
                    if target[0] == "name":
                        names.add(str(target[1]))
        return names

"""EVT1xx: event-bus protocol rules.

The session kernel narrates its work over a typed event bus
(``repro.events``); subscribers dispatch by type with MRO-aware
matching.  That decoupling is exactly what makes protocol drift
invisible at runtime — an event nobody listens to is silently dropped,
a subscription to a type nothing emits silently never fires.  These
rules cross-reference every ``bus.emit(X(...))`` against every
``bus.subscribe(Y, cb)`` project-wide:

* **EVT101** — an event type that is emitted somewhere but subscribed
  nowhere (not even via an ancestor type) is dead telemetry: either the
  narration is missing a consumer or the emit is leftover scaffolding.
* **EVT102** — a subscription to a type that is not part of the
  ``repro.events`` hierarchy can never receive anything the bus
  dispatches; likewise a project-function callback whose arity is not
  exactly one event argument.
* **EVT103** — each event type has an *owning* module (the component
  whose state change it reports); emitting it from anywhere else forges
  another component's narration.  The ownership table lives here
  (:data:`EVENT_OWNERS`) and is asserted against ``repro.events`` by
  the test suite.

EVT101 is a global-scope rule (it needs every module's subscriptions);
EVT102/EVT103 are closure-scoped and cache incrementally.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .callgraph import resolve_name
from .core import Finding, Severity
from .dataflow import (
    FuncIR,
    ModuleIR,
    Project,
    ProjectRule,
    VAttr,
    VCall,
    VName,
    ValueExpr,
    iter_calls,
)

__all__ = [
    "EVENTS_MODULE",
    "EVENT_OWNERS",
    "DeadEventRule",
    "ForeignEmitRule",
    "UnknownSubscriptionRule",
]

#: The module that owns the event hierarchy.
EVENTS_MODULE = "repro.events"

#: Root of the event hierarchy.
EVENT_ROOT = "SessionEvent"

#: Event type -> module prefixes allowed to emit it.  The owner is the
#: component whose state change the event reports; ``repro.sampling``
#: (a package prefix) covers every technique's ``EstimateUpdated``.
EVENT_OWNERS: Dict[str, Tuple[str, ...]] = {
    "SegmentStart": ("repro.sampling.session",),
    "SegmentEnd": ("repro.sampling.session",),
    "SampleTaken": ("repro.sampling.session",),
    "PhaseChange": ("repro.phase.classifier",),
    "ThresholdSelected": ("repro.phase.adaptive",),
    "EstimateUpdated": ("repro.sampling",),
}


def _spelled(expr: ValueExpr) -> Optional[str]:
    """Dotted spelling of a name/attribute chain, or None."""
    parts: List[str] = []
    node = expr
    while isinstance(node, VAttr):
        parts.append(node.attr)
        node = node.base
    if isinstance(node, VName):
        parts.append(node.name)
        return ".".join(reversed(parts))
    return None


def _event_classes(project: Project) -> Optional[Dict[str, Set[str]]]:
    """Event class name -> ancestor names (within the hierarchy).

    Returns None when the project does not contain ``repro.events`` —
    single-file runs cannot reason about the hierarchy, so the rules
    stand down rather than flag everything unknown.
    """
    events = project.by_module.get(EVENTS_MODULE)
    if events is None:
        return None
    bases: Dict[str, Tuple[str, ...]] = {
        cls.name: cls.bases for cls in events.classes
    }
    hierarchy: Dict[str, Set[str]] = {}
    for name in bases:
        ancestors: Set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for base in bases.get(current, ()):
                tail = base.rsplit(".", 1)[-1]
                if tail in bases and tail not in ancestors:
                    ancestors.add(tail)
                    frontier.append(tail)
        if name == EVENT_ROOT or EVENT_ROOT in ancestors:
            hierarchy[name] = ancestors
    return hierarchy


def _resolved_event(
    project: Project, mir: ModuleIR, spelled: Optional[str]
) -> Optional[str]:
    """Event class *name* when *spelled* resolves into ``repro.events``."""
    if spelled is None:
        return None
    resolved = resolve_name(project, mir, spelled)
    if resolved is None or not resolved.startswith(EVENTS_MODULE + "."):
        return None
    return resolved.rsplit(".", 1)[-1]


def _emit_sites(mir: ModuleIR) -> Iterator[Tuple[FuncIR, VCall, VCall]]:
    """(function, emit call, event-construction arg) per emit site."""
    for fn in mir.functions:
        for stmt in fn.body:
            value = getattr(stmt, "value", None)
            if value is None:
                continue
            for call in iter_calls(value):
                if call.name is None:
                    continue
                if call.name.rsplit(".", 1)[-1] != "emit":
                    continue
                if call.args and isinstance(call.args[0], VCall):
                    yield fn, call, call.args[0]


def _subscribe_sites(mir: ModuleIR) -> Iterator[Tuple[FuncIR, VCall]]:
    """(function, subscribe call) per subscription site."""
    for fn in mir.functions:
        for stmt in fn.body:
            value = getattr(stmt, "value", None)
            if value is None:
                continue
            for call in iter_calls(value):
                if call.name is None or not call.args:
                    continue
                if call.name.rsplit(".", 1)[-1] == "subscribe":
                    yield fn, call


class DeadEventRule(ProjectRule):
    """EVT101: every emitted event type needs a subscriber somewhere.

    The bus dispatches by MRO, so a subscription to an ancestor type
    (ultimately ``SessionEvent``) covers its descendants.  An event
    emitted with no subscription anywhere in the project is unobservable
    — dead narration that rots silently when fields change.
    """

    rule_id = "EVT101"
    severity = Severity.ERROR
    summary = "event type is emitted but never subscribed anywhere"
    scope = "global"

    def check_project(self, project: Project) -> Iterator[Finding]:
        """Cross-reference all emits against all subscriptions."""
        hierarchy = _event_classes(project)
        if hierarchy is None:
            return
        subscribed: Set[str] = set()
        for mir in project.modules:
            for _, call in _subscribe_sites(mir):
                name = _resolved_event(
                    project, mir, _spelled(call.args[0])
                )
                if name is not None:
                    subscribed.add(name)
        for mir in project.modules:
            for _, _, ctor in _emit_sites(mir):
                name = _resolved_event(project, mir, ctor.name)
                if name is None or name not in hierarchy:
                    continue
                covered = {name} | hierarchy[name]
                if covered & subscribed:
                    continue
                yield self.finding(
                    mir,
                    ctor.line,
                    ctor.col,
                    f"`{name}` is emitted here but no module subscribes "
                    f"to it (or an ancestor type); the narration is "
                    f"unobservable",
                )


class UnknownSubscriptionRule(ProjectRule):
    """EVT102: subscriptions must target real event types, with a
    single-argument callback.

    Subscribing to a class outside the ``repro.events`` hierarchy (or a
    name that doesn't resolve to a class at all) can never match any
    dispatched event; the handler just never fires.  A project-function
    callback must accept exactly one positional argument — the event.
    """

    rule_id = "EVT102"
    severity = Severity.ERROR
    summary = "subscription to a type outside the event hierarchy"
    scope = "closure"

    def check_module(
        self, project: Project, mir: ModuleIR
    ) -> Iterator[Finding]:
        """Validate each subscription's event type and callback arity."""
        hierarchy = _event_classes(project)
        if hierarchy is None:
            return
        for fn, call in _subscribe_sites(mir):
            spelled = _spelled(call.args[0])
            if spelled is None:
                # Computed first argument — out of static reach.
                continue
            name = _resolved_event(project, mir, spelled)
            if name is None or name not in hierarchy:
                yield self.finding(
                    mir,
                    call.line,
                    call.col,
                    f"subscription to `{spelled}`, which is not a type in "
                    f"the {EVENTS_MODULE} hierarchy; this handler can "
                    f"never fire",
                )
                continue
            if len(call.args) > 1:
                callback = _spelled(call.args[1])
                if callback is None:
                    continue
                resolved = resolve_name(project, mir, callback)
                if resolved is None:
                    # Local closure or lambda: extracted nested defs are
                    # module-level in the IR, so try the bare tail name.
                    target = mir.function(
                        f"{mir.module}.{callback.rsplit('.', 1)[-1]}"
                    )
                else:
                    target = project.by_module.get(
                        resolved.rsplit(".", 1)[0], mir
                    ).function(resolved)
                if target is None:
                    continue
                arity = len(
                    [p for p in target.params if p not in ("self", "cls")]
                )
                if arity != 1:
                    yield self.finding(
                        mir,
                        call.line,
                        call.col,
                        f"subscriber `{callback}` takes {arity} "
                        f"argument(s); the bus calls it with exactly one "
                        f"event",
                    )


class ForeignEmitRule(ProjectRule):
    """EVT103: events may only be emitted by their owning module.

    ``SegmentStart`` reported from anywhere but the session kernel (or
    ``PhaseChange`` from outside the classifier) forges another
    component's narration — downstream consumers could no longer trust
    an event to describe the state of the component it names.  The
    ownership table is :data:`EVENT_OWNERS`.
    """

    rule_id = "EVT103"
    severity = Severity.ERROR
    summary = "event emitted outside its owning module"
    scope = "closure"

    def check_module(
        self, project: Project, mir: ModuleIR
    ) -> Iterator[Finding]:
        """Flag emits of owned events from non-owner modules."""
        hierarchy = _event_classes(project)
        if hierarchy is None:
            return
        for _, _, ctor in _emit_sites(mir):
            name = _resolved_event(project, mir, ctor.name)
            if name is None:
                continue
            owners = EVENT_OWNERS.get(name)
            if owners is None:
                continue
            if any(
                mir.module == o or mir.module.startswith(o + ".")
                for o in owners
            ):
                continue
            yield self.finding(
                mir,
                ctor.line,
                ctor.col,
                f"`{name}` is owned by {', '.join(owners)} but emitted "
                f"from {mir.module}; only the owning component may "
                f"report this state change",
            )

"""Command-line interface: ``pgss-lint``.

Usage::

    pgss-lint src/repro                      # lint a tree, text output
    pgss-lint --format json src/repro        # machine-readable report
    pgss-lint --select DET001,DET004 path    # run only these rules
    pgss-lint --ignore HYG003 path           # run all but these
    pgss-lint --list-rules                   # print the rule catalogue

The exit code is the maximum severity found: 0 for a clean tree, 1 if
only warnings fired, 2 if any error fired.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from . import default_rules
from .core import Rule, lint_paths, max_severity, render_json, render_text

__all__ = ["main", "build_parser", "select_rules"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="pgss-lint",
        description=(
            "simulation-correctness linter for PGSS-Sim: determinism, "
            "oracle-leakage, hygiene and unit rules over Python sources"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (directories recurse into *.py)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule IDs to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="IDS",
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule ID with its severity and summary, then exit",
    )
    return parser


def select_rules(
    select: Optional[str], ignore: Optional[str]
) -> List[Rule]:
    """Resolve ``--select`` / ``--ignore`` into a concrete rule list."""
    rules = default_rules()
    if select:
        wanted = [r.strip() for r in select.split(",") if r.strip()]
        rules = [r for r in rules if r.rule_id in wanted]
    if ignore:
        skipped = [r.strip() for r in ignore.split(",") if r.strip()]
        rules = [r for r in rules if r.rule_id not in skipped]
    return rules


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the max severity as the exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.rule_id}  {rule.severity.label:7s}  {rule.summary}")
        return 0

    if not args.paths:
        parser.error("at least one path is required (or --list-rules)")

    rules = select_rules(args.select, args.ignore)
    if not rules:
        parser.error("--select/--ignore left no rules to run")

    try:
        findings = lint_paths(args.paths, rules)
    except OSError as exc:
        print(
            f"pgss-lint: error: cannot read {exc.filename}: {exc.strerror}",
            file=sys.stderr,
        )
        return 2
    if args.format == "json":
        print(render_json(findings))
    elif findings:
        print(render_text(findings))
    return max_severity(findings)


if __name__ == "__main__":
    sys.exit(main())

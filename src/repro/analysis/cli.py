"""Command-line interface: ``pgss-lint``.

Usage::

    pgss-lint src/repro                      # lint a tree, text output
    pgss-lint --format json src/repro        # machine-readable report
    pgss-lint --format sarif src/repro       # GitHub PR annotations
    pgss-lint --select DET001,LEA101 path    # run only these rules
    pgss-lint --ignore HYG003 path           # run all but these
    pgss-lint --jobs 4 src/repro             # parallel IR extraction
    pgss-lint --cache .lintcache src/repro   # incremental re-runs
    pgss-lint --explain LEA101               # why a rule exists
    pgss-lint --list-rules                   # print the rule catalogue

Per-module rules and the whole-program families (LEA1xx, DET1xx,
EVT1xx, CCH1xx — DESIGN.md §14) run together by default; ``--select`` /
``--ignore`` address both.  The exit code is the maximum severity
found: 0 for a clean tree, 1 if only warnings fired, 2 if any error
fired.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import List, Optional, Sequence, Tuple, Union

from . import default_project_rules, default_rules
from .core import (
    Rule,
    lint_paths,
    max_severity,
    render_json,
    render_text,
)
from .dataflow import AnalysisCache, ProjectRule, analyze_project
from .sarif import render_sarif

__all__ = ["main", "build_parser", "explain_rule", "select_rules"]

AnyRule = Union[Rule, ProjectRule]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="pgss-lint",
        description=(
            "simulation-correctness linter for PGSS-Sim: determinism, "
            "oracle-leakage, hygiene and unit rules plus whole-program "
            "taint analyses over Python sources"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (directories recurse into *.py)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="IDS",
        help="comma-separated rule IDs to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="IDS",
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for IR extraction (default: 1)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help=(
            "incremental analysis cache file; unchanged files reuse "
            "their extracted IR and unchanged import closures reuse "
            "their findings"
        ),
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help="run only the per-module rules (skip LEA1xx/DET1xx/...)",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="RULE",
        help="print the full documentation of one rule ID, then exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule ID with its severity and summary, then exit",
    )
    return parser


def _all_rules() -> List[AnyRule]:
    rules: List[AnyRule] = []
    rules.extend(default_rules())
    rules.extend(default_project_rules())
    return sorted(rules, key=lambda r: r.rule_id)


def select_rules(
    select: Optional[str], ignore: Optional[str]
) -> Tuple[List[Rule], List[ProjectRule]]:
    """Resolve ``--select``/``--ignore`` into (per-module, whole-program)."""
    ast_rules: List[AnyRule] = list(default_rules())
    project_rules: List[AnyRule] = list(default_project_rules())
    if select:
        wanted = [r.strip() for r in select.split(",") if r.strip()]
        ast_rules = [r for r in ast_rules if r.rule_id in wanted]
        project_rules = [r for r in project_rules if r.rule_id in wanted]
    if ignore:
        skipped = [r.strip() for r in ignore.split(",") if r.strip()]
        ast_rules = [r for r in ast_rules if r.rule_id not in skipped]
        project_rules = [
            r for r in project_rules if r.rule_id not in skipped
        ]
    return (
        [r for r in ast_rules if isinstance(r, Rule)],
        [r for r in project_rules if isinstance(r, ProjectRule)],
    )


def explain_rule(rule_id: str) -> Optional[str]:
    """Full documentation for *rule_id*, or None when unknown."""
    for rule in _all_rules():
        if rule.rule_id == rule_id:
            doc = inspect.cleandoc(type(rule).__doc__ or "")
            header = (
                f"{rule.rule_id} ({rule.severity.label}): {rule.summary}"
            )
            return f"{header}\n\n{doc}" if doc else header
    return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the max severity as the exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.explain:
        text = explain_rule(args.explain.strip())
        if text is None:
            print(
                f"pgss-lint: error: unknown rule {args.explain!r}",
                file=sys.stderr,
            )
            return 2
        print(text)
        return 0

    if args.list_rules:
        for rule in _all_rules():
            print(f"{rule.rule_id}  {rule.severity.label:7s}  {rule.summary}")
        return 0

    if not args.paths:
        parser.error("at least one path is required (or --list-rules)")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    ast_rules, project_rules = select_rules(args.select, args.ignore)
    if args.no_project:
        project_rules = []
    if not ast_rules and not project_rules:
        parser.error("--select/--ignore left no rules to run")

    stats_dict = None
    try:
        if project_rules:
            cache = (
                AnalysisCache(args.cache) if args.cache is not None else None
            )
            findings, stats = analyze_project(
                args.paths,
                project_rules,
                ast_rules=ast_rules,
                cache=cache,
                jobs=args.jobs,
            )
            stats_dict = stats.to_dict()
        else:
            findings = lint_paths(args.paths, ast_rules)
    except OSError as exc:
        print(
            f"pgss-lint: error: cannot read {exc.filename}: {exc.strerror}",
            file=sys.stderr,
        )
        return 2
    if args.format == "json":
        print(render_json(findings, stats=stats_dict))
    elif args.format == "sarif":
        all_rules: List[AnyRule] = list(ast_rules)
        all_rules.extend(project_rules)
        print(render_sarif(findings, all_rules))
    elif findings:
        print(render_text(findings))
    return max_severity(findings)


if __name__ == "__main__":
    sys.exit(main())

"""Rule engine for ``simlint``: AST walk, findings, suppressions, reporters.

The engine is deliberately small and dependency-free.  A
:class:`Rule` inspects one parsed module (:class:`ModuleContext`) and
yields :class:`Finding` objects; :func:`lint_paths` drives the walk over
files and directories, filters suppressed findings, and returns them
sorted for stable output.  Two reporters are provided: a
``path:line:col`` text format and a schema-versioned JSON document.

Suppressions are line-scoped comments, mirroring the usual linter
convention::

    elapsed = time.perf_counter() - start  # simlint: disable=DET005
    legacy_call()  # simlint: disable            (silences every rule)

A multi-line expression may carry the comment on its first *or* last
line (findings record the spanned range), and a whole module opts out
of a rule with a file-level pragma anywhere in the file::

    # simlint: disable-file=DET005
"""

from __future__ import annotations

import ast
import enum
import json
import os
import re
import tokenize
from dataclasses import dataclass
from io import StringIO
from pathlib import PurePath
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "JSON_SCHEMA_VERSION",
    "Finding",
    "ModuleContext",
    "Rule",
    "Severity",
    "dotted_name",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "max_severity",
    "parse_suppressions",
    "render_json",
    "render_text",
]

#: Version stamp of the JSON reporter output; bump on breaking changes.
#: v2: findings gained ``end_line``, documents gained optional ``stats``.
JSON_SCHEMA_VERSION = 2

#: Rule ID used for findings produced by unparseable source.
PARSE_RULE_ID = "PARSE001"

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable(?P<file>-file)?"
    r"(?:=(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*))?"
)

#: Sentinel for "every rule is suppressed on this line".
_ALL_RULES: FrozenSet[str] = frozenset({"*"})


class Severity(enum.IntEnum):
    """Finding severity; the integer doubles as the process exit code."""

    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        """Lower-case name used by the reporters."""
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location.

    ``end_line`` is the last line of the offending construct (equal to
    ``line`` for single-line nodes); suppression comments on either end
    of a spanned expression silence the finding.
    """

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str
    end_line: int = 0

    def __post_init__(self) -> None:
        if self.end_line < self.line:
            object.__setattr__(self, "end_line", self.line)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation (stable key set)."""
        return {
            "path": self.path,
            "line": self.line,
            "end_line": self.end_line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.label,
            "message": self.message,
        }

    def sort_key(self) -> Tuple[str, int, int, str]:
        """Stable ordering key: (path, line, col, rule_id)."""
        return (self.path, self.line, self.col, self.rule_id)


def parse_suppressions(
    source: str,
) -> Tuple[Dict[int, FrozenSet[str]], FrozenSet[str]]:
    """Parse suppression comments out of *source*.

    Returns ``(per_line, file_level)``: a map of line number -> rule IDs
    disabled on that line, and the set of rule IDs disabled for the whole
    file via ``# simlint: disable-file=RULE``.  The special value
    containing ``"*"`` means every rule is disabled.  Unparseable
    trailing source (inside a triple-quoted string cut off, say) degrades
    gracefully to "no suppressions found past that point".
    """
    table: Dict[int, FrozenSet[str]] = {}
    file_level: FrozenSet[str] = frozenset()
    try:
        tokens = tokenize.generate_tokens(StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                ids = _ALL_RULES
            else:
                ids = frozenset(r.strip() for r in rules.split(","))
            if match.group("file"):
                file_level = file_level | ids
            else:
                line = tok.start[0]
                table[line] = table.get(line, frozenset()) | ids
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return table, file_level


class ModuleContext:
    """One parsed module plus the metadata rules need to judge it."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = PurePath(path).as_posix()
        self.source = source
        self.tree = tree
        self.suppressions, self.file_suppressions = parse_suppressions(source)
        parts = PurePath(self.path).parts
        # Package-relative parts: everything after the *last* "repro"
        # directory, so rules can ask "is this file under repro/sampling?"
        # regardless of where the checkout lives.
        self.package_parts: Tuple[str, ...] = ()
        for i in range(len(parts) - 1, -1, -1):
            if parts[i] == "repro":
                self.package_parts = parts[i + 1 :]
                break

    @property
    def module_name(self) -> str:
        """File name without extension (``cache`` for ``.../cache.py``)."""
        return PurePath(self.path).stem

    def in_subpackage(self, *names: str) -> bool:
        """True if the module lives under ``repro/<name>/`` for any name."""
        return bool(self.package_parts) and self.package_parts[0] in names

    def is_suppressed(
        self, line: int, rule_id: str, end_line: int = 0
    ) -> bool:
        """True if *rule_id* is disabled at this location.

        A finding is suppressed by a file-level pragma, a comment on its
        reported line, or — for constructs spanning several lines — a
        comment on the construct's last line.
        """
        if "*" in self.file_suppressions or rule_id in self.file_suppressions:
            return True
        for candidate in (line, end_line or line):
            ids = self.suppressions.get(candidate)
            if ids is not None and ("*" in ids or rule_id in ids):
                return True
        return False


class Rule:
    """Base class for one lint check.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding findings via :meth:`finding` so location and severity are
    filled in consistently.
    """

    rule_id: str = "XXX000"
    severity: Severity = Severity.ERROR
    summary: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module.  Subclasses must override."""
        raise NotImplementedError

    def finding(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        """Build a finding for *node* with this rule's ID and severity.

        Expression nodes carry their spanned line range so a suppression
        comment on the last line of a multi-line expression works;
        def/class nodes deliberately do not (their span is the whole
        body, which would over-suppress).
        """
        line = getattr(node, "lineno", 1)
        end_line = line
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            end_line = getattr(node, "end_lineno", None) or line
        return Finding(
            path=ctx.path,
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            severity=self.severity if severity is None else severity,
            message=message,
            end_line=end_line,
        )


def dotted_name(node: ast.AST) -> Optional[str]:
    """Dotted name of a ``Name``/``Attribute`` chain, or None.

    ``np.random.default_rng`` -> ``"np.random.default_rng"``.  Chains
    containing calls or subscripts (``a().b``) resolve to None: the
    rules only reason about statically-spelled names.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def lint_source(
    source: str, path: str, rules: Sequence[Rule]
) -> List[Finding]:
    """Lint one module given as text; *path* is used for reporting."""
    posix = PurePath(path).as_posix()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=posix,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule_id=PARSE_RULE_ID,
                severity=Severity.ERROR,
                message=f"source failed to parse: {exc.msg}",
            )
        ]
    ctx = ModuleContext(path, source, tree)
    findings = [
        f
        for rule in rules
        for f in rule.check(ctx)
        if not ctx.is_suppressed(f.line, f.rule_id, f.end_line)
    ]
    return sorted(findings, key=Finding.sort_key)


def lint_file(path: str, rules: Sequence[Rule]) -> List[Finding]:
    """Lint one file on disk."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    return lint_source(source, path, rules)


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files and directories into a sorted stream of ``.py`` files."""
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield os.path.join(dirpath, name)
        else:
            yield path


def lint_paths(
    paths: Iterable[str], rules: Sequence[Rule]
) -> List[Finding]:
    """Lint files and directory trees; returns findings in stable order."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules))
    return sorted(findings, key=Finding.sort_key)


def max_severity(findings: Sequence[Finding]) -> int:
    """Highest severity present (0 for a clean run) — the exit code."""
    return max((int(f.severity) for f in findings), default=0)


def render_text(findings: Sequence[Finding]) -> str:
    """Human-oriented ``path:line:col: ID severity: message`` report."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule_id} {f.severity.label}: "
        f"{f.message}"
        for f in findings
    ]
    errors = sum(1 for f in findings if f.severity >= Severity.ERROR)
    warnings = len(findings) - errors
    lines.append(
        f"{len(findings)} finding(s): {errors} error(s), "
        f"{warnings} warning(s)"
    )
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    stats: Optional[Dict[str, object]] = None,
) -> str:
    """Machine-oriented report with a stable, versioned schema.

    Findings are emitted in :meth:`Finding.sort_key` order — (path,
    line, col, rule) — so two runs over the same tree produce
    byte-identical documents and CI diffs stay meaningful.  *stats*,
    when given, adds an ``analysis`` block (whole-program cache and
    fan-out counters); the schema is documented in DESIGN.md §10.
    """
    ordered = sorted(findings, key=Finding.sort_key)
    errors = sum(1 for f in ordered if f.severity >= Severity.ERROR)
    document = {
        "version": JSON_SCHEMA_VERSION,
        "tool": "pgss-lint",
        "findings": [f.to_dict() for f in ordered],
        "summary": {
            "total": len(ordered),
            "errors": errors,
            "warnings": len(ordered) - errors,
            "max_severity": max_severity(ordered),
        },
    }
    if stats is not None:
        document["analysis"] = stats
    return json.dumps(document, indent=2, sort_keys=True)

"""LEA1xx: flow-sensitive oracle-taint rules.

The syntactic LEA001-003 rules catch *spellings* — an oracle attribute
read inside an online module, an experiments import.  They cannot catch
the value itself travelling: ``x = trace.true_ipc`` in a helper module,
returned through a function, unpacked from a tuple, and finally used to
size a :class:`~repro.sampling.session.ModeSegment`.  These rules run
the interprocedural taint engine with the oracle vocabulary and flag
tainted values reaching the decision sinks that steer sampling:

* **LEA101** — plan construction (``ModeSegment``, ``periodic_plan``,
  ``run_to_end_plan``): an oracle-derived op count or mode choice means
  the simulated schedule was tuned by the answer key.
* **LEA102** — ``SampleBudget`` arithmetic: deriving sample size or
  precision targets from the true IPC is the classic way a "3% error"
  claim becomes circular.
* **LEA103** — phase-classifier thresholds and technique configs: a
  threshold fitted against ground truth makes the phase detector an
  oracle consumer.

Sources are reads of ``true_ipc``/``ground_truth`` (attribute or
accessor call) — *not* the reference trace object itself, whose BBV
structure offline techniques legitimately reuse for profiling.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List

from .core import Finding, Severity
from .dataflow import ModuleIR, Project, ProjectRule
from .taint import CallTaintRecord, TaintAnalysis, TaintSpec, call_matches

__all__ = [
    "ORACLE_TAINT_SPEC",
    "OracleIntoBudgetRule",
    "OracleIntoPlanRule",
    "OracleIntoThresholdRule",
]

#: Shared oracle vocabulary: one taint analysis serves all three rules.
ORACLE_TAINT_SPEC = TaintSpec(
    spec_id="oracle",
    source_attrs=frozenset({"true_ipc", "ground_truth"}),
    source_calls=frozenset({"true_ipc", "ground_truth"}),
)


class _OracleFlowRule(ProjectRule):
    """Common machinery: match tainted inputs at a named sink family."""

    scope = "closure"
    severity = Severity.ERROR
    #: Callee names (full or last dotted component) that form the sink.
    sinks: FrozenSet[str] = frozenset()
    #: Human phrase for the sink family, used in messages.
    sink_label: str = "sink"

    def check_module(
        self, project: Project, mir: ModuleIR
    ) -> Iterator[Finding]:
        """Flag oracle-tainted arguments reaching this rule's sinks."""
        analysis = TaintAnalysis.for_project(project, ORACLE_TAINT_SPEC)
        for rec in analysis.records(mir):
            if not call_matches(rec.call, self.sinks):
                continue
            for label in _tainted_inputs(rec):
                yield self.finding(
                    mir,
                    rec.call.line,
                    rec.call.col,
                    f"oracle-derived value ({label}) flows into "
                    f"{self.sink_label} `{rec.call.name}` — true-IPC "
                    f"ground truth must never steer sampling decisions",
                )


def _tainted_inputs(rec: CallTaintRecord) -> List[str]:
    """Describe which call inputs carry taint."""
    labels: List[str] = []
    for i, tainted in enumerate(rec.args):
        if tainted:
            labels.append(f"argument {i + 1}")
    for name, tainted in rec.kwargs:
        if tainted and name is not None:
            labels.append(f"keyword `{name}`")
    return labels


class OracleIntoPlanRule(_OracleFlowRule):
    """LEA101: oracle taint must not reach plan/segment construction.

    ``ModeSegment``, ``periodic_plan`` and ``run_to_end_plan`` decide
    *where and how long* the simulator measures.  If any argument is
    derived — however indirectly — from ``true_ipc``, the sampling plan
    was shaped by the reference answer and the error figures are
    circular.  Flow-sensitive: catches taint laundered through locals,
    tuples, and helper-function returns that LEA001-003 cannot see.
    """

    rule_id = "LEA101"
    summary = "oracle-derived value flows into sampling-plan construction"
    sinks = frozenset({"ModeSegment", "periodic_plan", "run_to_end_plan"})
    sink_label = "plan constructor"


class OracleIntoBudgetRule(_OracleFlowRule):
    """LEA102: oracle taint must not reach ``SampleBudget`` arithmetic.

    The budget fixes sample length, warmup, and the relative-error /
    confidence targets shared by every confidence-driven technique.
    Feeding it a value computed from the true IPC (e.g. shrinking
    ``rel_error`` until the estimate happens to match) silently converts
    a measured error into a fitted one.
    """

    rule_id = "LEA102"
    summary = "oracle-derived value flows into SampleBudget construction"
    sinks = frozenset({"SampleBudget"})
    sink_label = "budget constructor"


class OracleIntoThresholdRule(_OracleFlowRule):
    """LEA103: oracle taint must not reach classifier thresholds/configs.

    Phase-classifier thresholds and technique configuration objects are
    the knobs a leaked oracle would most plausibly tune.  A threshold
    fitted against ground truth turns the online phase detector into an
    oracle consumer; the paper's point is that it works *without* one.
    """

    rule_id = "LEA103"
    summary = "oracle-derived value flows into classifier/config threshold"
    sinks = frozenset(
        {
            "OnlinePhaseClassifier",
            "AdaptiveThresholdSelector",
            "phase_statistics",
            "PgssConfig",
            "SmartsConfig",
            "TurboSmartsConfig",
            "SimPointConfig",
            "OnlineSimPointConfig",
        }
    )
    sink_label = "threshold/config constructor"

"""Symbol table and call graph over the dataflow IR.

Resolution is deliberately conservative and name-driven: the IR records
statically-spelled callee names (``session.run_segment``,
``np.random.default_rng``), and this module maps them to project
function qnames using each module's import table, local definitions,
and class method tables.  ``self.method()`` resolves within the
enclosing class; a bare ``obj.method()`` falls back to *unique* method
names across the project (ambiguous names stay unresolved rather than
guessing).  Calls to a project class resolve to its ``__init__``.

Unresolved calls are kept as external edges keyed by their spelled
name, which is exactly what the taint and provenance layers match
source/sink patterns against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .dataflow import (
    FuncIR,
    ModuleIR,
    Project,
    VCall,
    iter_calls,
)

__all__ = [
    "CallGraph",
    "CallSite",
    "build_call_graph",
    "resolve_call",
    "resolve_name",
]

_MEMO_KEY = "callgraph"


@dataclass(frozen=True)
class CallSite:
    """One resolved (or external) call edge."""

    caller: str
    callee: Optional[str]
    spelled: Optional[str]
    line: int
    col: int
    call: VCall


@dataclass
class CallGraph:
    """Edges between project functions plus external (unresolved) calls."""

    edges: Dict[str, Set[str]] = field(default_factory=dict)
    sites: List[CallSite] = field(default_factory=list)
    #: qname -> sites made *from* that function.
    by_caller: Dict[str, List[CallSite]] = field(default_factory=dict)

    def add(self, site: CallSite) -> None:
        """Record one call site."""
        self.sites.append(site)
        self.by_caller.setdefault(site.caller, []).append(site)
        if site.callee is not None:
            self.edges.setdefault(site.caller, set()).add(site.callee)

    def callees(self, qname: str) -> Set[str]:
        """Project functions called (directly) from *qname*."""
        return self.edges.get(qname, set())

    def reachable(self, entries: Iterable[str]) -> Set[str]:
        """Project functions reachable from *entries* (BFS, inclusive)."""
        seen: Set[str] = set()
        frontier = [e for e in entries]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.edges.get(current, ()))
        return seen


def resolve_name(
    project: Project, mir: ModuleIR, spelled: str
) -> Optional[str]:
    """Resolve a spelled dotted name to a project symbol qname.

    Tries, in order: a local function/class in *mir*; the module's
    import table (``from x import f`` => alias ``f`` -> ``x.f``;
    ``import pkg.mod as m`` => head ``m`` rewritten to ``pkg.mod``);
    then checks the rewritten dotted path against project modules.
    Returns the function qname, ``module.Class`` for classes, or None.
    """
    head, _, rest = spelled.partition(".")
    imports = mir.import_map()
    if head in imports:
        absolute = imports[head] + (f".{rest}" if rest else "")
    else:
        absolute = f"{mir.module}.{spelled}"
    resolved = _lookup_absolute(project, absolute)
    if resolved is not None:
        return resolved
    # Fully-qualified spelling without an import alias (rare).
    return _lookup_absolute(project, spelled)


def _lookup_absolute(project: Project, absolute: str) -> Optional[str]:
    """Map an absolute dotted path to a function/class qname, if any."""
    module_name, _, symbol = absolute.rpartition(".")
    target = project.by_module.get(module_name)
    if target is not None and symbol:
        if target.function(f"{module_name}.{symbol}") is not None:
            return f"{module_name}.{symbol}"
        for cls in target.classes:
            if cls.name == symbol:
                return f"{module_name}.{symbol}"
        # ``from pkg.mod import Class`` then ``Class.method`` spelling.
        outer, _, method = symbol.rpartition(".")
        if outer:
            for cls in target.classes:
                if cls.name == outer and method in cls.methods:
                    return f"{module_name}.{outer}.{method}"
    # Re-exported through a package __init__: follow its import table.
    if target is not None and symbol:
        reexport = target.import_map().get(symbol)
        if reexport is not None and reexport != absolute:
            return _lookup_absolute(project, reexport)
    return None


def _method_table(project: Project) -> Dict[str, List[str]]:
    """method name -> qnames of every project method with that name."""
    table: Dict[str, List[str]] = {}
    for mir in project.modules:
        for cls in mir.classes:
            for method in cls.methods:
                table.setdefault(method, []).append(
                    f"{mir.module}.{cls.name}.{method}"
                )
    return table


def resolve_call(
    project: Project,
    mir: ModuleIR,
    fn: FuncIR,
    call: VCall,
    methods: Optional[Dict[str, List[str]]] = None,
) -> Optional[str]:
    """Resolve one call site to a project function qname, or None.

    A resolved class reference becomes its ``__init__`` when the class
    defines one.  ``self.m()`` resolves inside the enclosing class
    (walking spelled base classes defined in the project); other
    ``obj.m()`` spellings resolve only when ``m`` names exactly one
    method project-wide.
    """
    spelled = call.name
    if spelled is None:
        return None
    direct = resolve_name(project, mir, spelled)
    if direct is not None:
        qname = direct
        module_name, _, symbol = direct.rpartition(".")
        target = project.by_module.get(module_name)
        if target is not None:
            for cls in target.classes:
                if cls.name == symbol:
                    if "__init__" in cls.methods:
                        qname = f"{direct}.__init__"
                    break
        return qname
    if spelled.startswith("self.") and fn.class_name is not None:
        method = spelled[len("self.") :]
        if "." not in method:
            resolved = _resolve_self_method(
                project, mir, fn.class_name, method
            )
            if resolved is not None:
                return resolved
    if "." in spelled:
        method = spelled.rsplit(".", 1)[1]
        if methods is None:
            methods = _method_table(project)
        candidates = methods.get(method, [])
        if len(candidates) == 1:
            return candidates[0]
    return None


def _resolve_self_method(
    project: Project, mir: ModuleIR, class_name: str, method: str
) -> Optional[str]:
    """Find *method* on *class_name* or its spelled project bases."""
    seen: Set[Tuple[str, str]] = set()
    frontier: List[Tuple[ModuleIR, str]] = [(mir, class_name)]
    while frontier:
        cur_mir, cur_cls = frontier.pop()
        if (cur_mir.module, cur_cls) in seen:
            continue
        seen.add((cur_mir.module, cur_cls))
        for cls in cur_mir.classes:
            if cls.name != cur_cls:
                continue
            if method in cls.methods:
                return f"{cur_mir.module}.{cur_cls}.{method}"
            for base in cls.bases:
                resolved = resolve_name(project, cur_mir, base)
                if resolved is None:
                    continue
                base_module, _, base_cls = resolved.rpartition(".")
                base_mir = project.by_module.get(base_module)
                if base_mir is not None:
                    frontier.append((base_mir, base_cls))
    return None


def build_call_graph(project: Project) -> CallGraph:
    """Build (and memoise on the project) the full call graph."""
    cached = project.memo.get(_MEMO_KEY)
    if isinstance(cached, CallGraph):
        return cached
    graph = CallGraph()
    methods = _method_table(project)
    for mir in project.modules:
        for fn in mir.functions:
            for stmt in fn.body:
                value = getattr(stmt, "value", None)
                if value is None:
                    continue
                for call in iter_calls(value):
                    graph.add(
                        CallSite(
                            caller=fn.qname,
                            callee=resolve_call(
                                project, mir, fn, call, methods
                            ),
                            spelled=call.name,
                            line=call.line,
                            col=call.col,
                            call=call,
                        )
                    )
    project.memo[_MEMO_KEY] = graph
    return graph

"""Command-line interface: ``pgss-sim``.

Subcommands::

    pgss-sim list                      # available workloads
    pgss-sim simulate 164.gzip         # full-detail run of one benchmark
    pgss-sim sample 164.gzip -t pgss   # one sampling technique
    pgss-sim figure 12                 # regenerate one paper figure
    pgss-sim jobs submit --queue DIR   # enqueue experiment cells
    pgss-sim worker --queue DIR        # execute queued cells (fleet)
    pgss-sim jobs fetch --queue DIR ID # assemble a finished job's report
    pgss-sim run-all --jobs 4          # submit + wait + fetch in one step
    pgss-sim rates                     # per-mode simulation rates
    pgss-sim clear-cache               # drop cached experiment results

Every experiment-running command is a thin client of
:class:`repro.fleet.ExperimentService`; ``run-all`` is the compat alias
for ``jobs submit`` + wait + ``jobs fetch`` on the in-process backend
(or on a shared queue with ``--queue``).  All subcommands accept
``--scale {quick,scaled,paper}``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from .config import Scale, ScaleConfig
from .program import WORKLOAD_NAMES, get_workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .events import EventBus
    from .fleet import ExperimentService, JobState

__all__ = ["main", "build_parser"]

_SCALES = {"quick": Scale.QUICK, "scaled": Scale.SCALED, "paper": Scale.PAPER}

_FIGURES = {
    "1": "fig01_timeline",
    "2": "fig02_sampling_granularity",
    "3": "fig03_ipc_distribution",
    "6": "fig07_change_distribution",
    "7": "fig07_change_distribution",
    "8": "fig08_detection_rate",
    "9": "fig09_false_positives",
    "10": "fig10_twolf_threshold",
    "11": "fig11_pgss_sweep",
    "12": "fig12_technique_comparison",
    "13": "fig13_simulation_time",
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="pgss-sim",
        description="Phase-Guided Small-Sample Simulation (ISPASS 2007) reproduction",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="scaled",
        help="interval-scale configuration (default: scaled)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available workloads")

    p_sim = sub.add_parser("simulate", help="full-detail run of one workload")
    p_sim.add_argument("workload", help="workload name, e.g. 164.gzip")

    p_inspect = sub.add_parser(
        "inspect", help="static + dynamic profile of one workload"
    )
    p_inspect.add_argument("workload")

    p_sample = sub.add_parser("sample", help="run one sampling technique")
    p_sample.add_argument("workload")
    p_sample.add_argument(
        "-t",
        "--technique",
        choices=[
            "smarts",
            "turbosmarts",
            "simpoint",
            "online-simpoint",
            "pgss",
            "stratified",
            "ranked",
        ],
        default="pgss",
    )
    p_sample.add_argument(
        "--threshold", type=float, default=0.05, help="BBV threshold (fraction of pi)"
    )
    p_sample.add_argument(
        "--period", type=int, default=None, help="BBV/sampling period in ops"
    )
    p_sample.add_argument(
        "--progress",
        action="store_true",
        help="stream session events (samples, phase changes, estimates) "
        "to stderr while the technique runs",
    )

    p_fig = sub.add_parser("figure", help="regenerate one paper figure")
    p_fig.add_argument("number", choices=sorted(_FIGURES, key=int))

    p_report = sub.add_parser(
        "report", help="regenerate every figure into one report"
    )
    p_report.add_argument(
        "-o", "--output", default=None, help="write the report to a file"
    )

    p_runall = sub.add_parser(
        "run-all",
        help="run every figure's experiment cells (optionally in "
        "parallel), then assemble the full report",
        description="Compatibility alias for the job-service API: "
        "equivalent to `jobs submit` + wait + `jobs fetch` on the "
        "in-process backend, or — with --queue — on a shared queue "
        "directory that `pgss-sim worker` processes execute. Results "
        "are byte-identical either way.",
    )
    p_runall.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the cell fan-out (default: 1 = serial; "
        "results are byte-identical for any job count)",
    )
    p_runall.add_argument(
        "--figures",
        default=None,
        help="comma-separated figure ids to run (e.g. '2,11,ext-tradeoff'; "
        "default: all)",
    )
    p_runall.add_argument(
        "-o", "--output", default=None, help="write the report to a file"
    )
    p_runall.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )
    p_runall.add_argument(
        "--queue",
        default=None,
        metavar="DIR",
        help="submit to this shared queue directory and wait for fleet "
        "workers to execute the cells (instead of running in-process)",
    )

    p_jobs = sub.add_parser(
        "jobs", help="submit and manage fleet jobs on a shared queue"
    )
    jobs_sub = p_jobs.add_subparsers(dest="jobs_command", required=True)

    p_submit = jobs_sub.add_parser(
        "submit", help="enqueue the experiment cells of the selected figures"
    )
    p_submit.add_argument("--queue", required=True, metavar="DIR")
    p_submit.add_argument(
        "--figures",
        default=None,
        help="comma-separated figure ids (default: all)",
    )
    p_submit.add_argument(
        "--priority",
        type=int,
        default=50,
        help="0-99, higher is claimed earlier (default: 50)",
    )
    p_submit.add_argument(
        "--retries",
        type=int,
        default=1,
        help="extra attempts per cell after a failure or lost lease "
        "(default: 1)",
    )

    p_status = jobs_sub.add_parser("status", help="show a job's progress")
    p_status.add_argument("--queue", required=True, metavar="DIR")
    p_status.add_argument(
        "job", nargs="?", default=None, help="job id (default: every job)"
    )

    p_fetch = jobs_sub.add_parser(
        "fetch", help="assemble a finished job's report from the cache"
    )
    p_fetch.add_argument("--queue", required=True, metavar="DIR")
    p_fetch.add_argument("job")
    p_fetch.add_argument(
        "-o", "--output", default=None, help="write the report to a file"
    )

    p_cancel = jobs_sub.add_parser(
        "cancel", help="cancel a job's still-pending cells"
    )
    p_cancel.add_argument("--queue", required=True, metavar="DIR")
    p_cancel.add_argument("job")

    p_worker = sub.add_parser(
        "worker", help="claim and execute queued cells until stopped"
    )
    p_worker.add_argument("--queue", required=True, metavar="DIR")
    p_worker.add_argument(
        "--drain",
        action="store_true",
        help="exit when the queue is empty instead of waiting for work",
    )
    p_worker.add_argument(
        "--max-cells",
        type=int,
        default=0,
        help="stop after this many cells (default: unlimited)",
    )
    p_worker.add_argument(
        "--lease",
        type=float,
        default=None,
        metavar="S",
        help="lease duration in seconds (default: 60; heartbeats refresh "
        "at a third of this)",
    )
    p_worker.add_argument(
        "--poll",
        type=float,
        default=None,
        metavar="S",
        help="idle sleep between queue scans (default: 0.5)",
    )
    p_worker.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-cell wall-clock budget (default: 600)",
    )
    p_worker.add_argument(
        "--checkpoint-windows",
        type=int,
        default=None,
        metavar="N",
        help="trace windows between mid-cell checkpoints (default: 32)",
    )
    p_worker.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )

    sub.add_parser("rates", help="measure per-mode simulation rates")
    sub.add_parser(
        "calibrate", help="per-workload IPC/variability calibration table"
    )
    p_clear = sub.add_parser(
        "clear-cache",
        help="delete cached experiment results and sweep queue litter",
    )
    p_clear.add_argument(
        "--queue",
        default=None,
        metavar="DIR",
        help="also sweep this queue directory: reap expired leases, "
        "requeue or fail their tasks, drop orphaned tmp files and "
        "checkpoints",
    )
    p_clear.add_argument(
        "--sweep",
        action="store_true",
        help="only remove crash litter (stale claims, tmp files); keep "
        "cached results",
    )
    return parser


def _cmd_list() -> int:
    for name in WORKLOAD_NAMES:
        print(name)
    print("168.wupwise  (Figure 3 subject)")
    return 0


def _cmd_simulate(scale: ScaleConfig, workload: str) -> int:
    from .sampling import FullDetail

    result = FullDetail().run(get_workload(workload, scale))
    print(
        f"{workload}: IPC {result.ipc_estimate:.4f} over {result.total_ops:,} ops"
    )
    return 0


def _make_progress_bus() -> "EventBus":
    """An event bus whose subscribers narrate the run on stderr."""
    from .events import (
        EstimateUpdated,
        EventBus,
        PhaseChange,
        SampleTaken,
        SegmentEnd,
        SegmentStart,
        ThresholdSelected,
    )

    bus = EventBus()

    # Per-role segment tallies, summarised on the final estimate rather
    # than per segment (a run executes tens of thousands of segments).
    segments_started = [0]
    segment_totals: Dict[str, List[int]] = {}

    def on_segment_start(event: SegmentStart) -> None:
        segments_started[0] += 1

    def on_segment_end(event: SegmentEnd) -> None:
        tally = segment_totals.setdefault(event.role, [0, 0])
        tally[0] += 1
        tally[1] += event.ops

    def on_threshold(event: ThresholdSelected) -> None:
        gate = "" if event.usable else " (fallback)"
        print(
            f"  threshold selected: {event.threshold:.3f}*pi -> "
            f"{event.n_phases} phases, change rate "
            f"{event.change_rate:.3f}{gate}",
            file=sys.stderr,
        )

    def on_sample(event: SampleTaken) -> None:
        print(
            f"  sample #{event.index} @ op {event.op_offset:,}: "
            f"ipc {event.ipc:.3f} ({event.ops} ops / {event.cycles} cycles)",
            file=sys.stderr,
        )

    def on_phase(event: PhaseChange) -> None:
        kind = "new phase" if event.created else "phase change"
        prev = "-" if event.previous_phase_id is None else event.previous_phase_id
        print(
            f"  {kind}: {prev} -> {event.phase_id} "
            f"(distance {event.distance:.3f}, period {event.n_observations})",
            file=sys.stderr,
        )

    def on_estimate(event: EstimateUpdated) -> None:
        tag = "final" if event.final else "running"
        print(
            f"  {tag} estimate [{event.technique}]: ipc {event.ipc:.4f} "
            f"after {event.n_samples} samples",
            file=sys.stderr,
        )
        if event.final and segment_totals:
            mix = ", ".join(
                f"{role}: {n} x {ops:,} ops"
                for role, (n, ops) in sorted(segment_totals.items())
            )
            print(
                f"  segment mix ({segments_started[0]} started): {mix}",
                file=sys.stderr,
            )
            segments_started[0] = 0
            segment_totals.clear()

    bus.subscribe(SegmentStart, on_segment_start)
    bus.subscribe(SegmentEnd, on_segment_end)
    bus.subscribe(SampleTaken, on_sample)
    bus.subscribe(PhaseChange, on_phase)
    bus.subscribe(EstimateUpdated, on_estimate)
    bus.subscribe(ThresholdSelected, on_threshold)
    return bus


def _cmd_sample(
    scale: ScaleConfig,
    workload: str,
    technique: str,
    threshold: float,
    period: Optional[int],
    progress: bool = False,
) -> int:
    from .sampling import (
        OnlineSimPoint,
        OnlineSimPointConfig,
        Pgss,
        PgssConfig,
        RankedSetConfig,
        RankedSetSampling,
        SimPoint,
        SimPointConfig,
        Smarts,
        SmartsConfig,
        TurboSmarts,
        TurboSmartsConfig,
        TwoPhaseStratified,
        TwoPhaseStratifiedConfig,
    )

    program = get_workload(workload, scale)
    if technique == "smarts":
        tech = Smarts(SmartsConfig.from_scale(scale))
    elif technique == "turbosmarts":
        tech = TurboSmarts(TurboSmartsConfig.from_scale(scale))
    elif technique == "simpoint":
        interval = period or scale.simpoint_intervals[-1]
        n_clusters = max(min(10, scale.benchmark_ops // interval - 1), 1)
        tech = SimPoint(SimPointConfig(interval, n_clusters))
    elif technique == "online-simpoint":
        tech = OnlineSimPoint(
            OnlineSimPointConfig(period or scale.simpoint_intervals[-1], threshold)
        )
    elif technique == "stratified":
        overrides = {"interval_ops": period} if period else {}
        tech = TwoPhaseStratified(
            TwoPhaseStratifiedConfig.from_scale(
                scale, threshold_pi=threshold, **overrides
            )
        )
    elif technique == "ranked":
        overrides = {"interval_ops": period} if period else {}
        tech = RankedSetSampling(RankedSetConfig.from_scale(scale, **overrides))
    else:
        tech = Pgss(
            PgssConfig.from_scale(
                scale, bbv_period_ops=period, threshold_pi=threshold
            )
        )
    bus = _make_progress_bus() if progress else None
    result = tech.run(program, bus=bus)
    print(
        f"{result.technique} on {workload}: IPC estimate "
        f"{result.ipc_estimate:.4f}, detailed ops {result.detailed_ops:,}, "
        f"samples {result.n_samples}"
    )
    for key, value in result.extras.items():
        print(f"  {key}: {value}")
    return 0


def _print_failures(state: "JobState") -> None:
    for cell_id, error in sorted(state.failures.items()):
        print(f"cell {cell_id} failed: {error}", file=sys.stderr)
    failed = state.counts.get("failed", 0)
    print(f"job {state.job_id}: {failed}/{state.total} cells failed",
          file=sys.stderr)


def _run_local_job(
    scale: ScaleConfig,
    figures: Optional[str],
    jobs: int = 1,
    quiet: bool = True,
) -> "tuple[int, Optional[str]]":
    """Submit + wait + fetch on the in-process service backend."""
    from .experiments import ExperimentContext
    from .fleet import LocalService

    progress = (
        None
        if quiet
        else lambda line: print(line, file=sys.stderr, flush=True)
    )
    service = LocalService(
        ExperimentContext(scale), jobs=jobs, progress=progress
    )
    handle = service.submit(figures=figures)
    state = service.wait(handle)
    if state.state != "done":
        _print_failures(state)
        return 1, None
    return 0, service.fetch(handle)


def _cmd_figure(scale: ScaleConfig, number: str) -> int:
    code, text = _run_local_job(scale, figures=number)
    if text is not None:
        print(text)
    return code


def _cmd_inspect(scale: ScaleConfig, workload: str) -> int:
    from .program import dynamic_profile, static_profile

    program = get_workload(workload, scale)
    static = static_profile(program)
    dynamic = dynamic_profile(program)
    print(f"{workload} (scale {scale.name})")
    print(f"  blocks: {static.n_blocks} ({static.n_instructions} static "
          f"instructions over {static.text_span_bytes:,} B of text)")
    print(f"  behaviours: {static.n_behaviors}, script segments: "
          f"{static.n_segments}")
    print(f"  data footprint: {static.mem_footprint_bytes / 1024:,.0f} KB "
          f"across patterns {static.pattern_mix}")
    mix = ", ".join(f"{k}:{v}" for k, v in sorted(static.op_mix.items()))
    print(f"  static op mix: {mix}")
    print(f"  dynamic: {dynamic.total_ops:,} ops in {dynamic.total_events:,} "
          f"block executions (mean {dynamic.mean_block_ops:.1f} ops/block, "
          f"{dynamic.taken_fraction:.1%} branches taken)")
    share = {
        name: f"{ops / sum(dynamic.behavior_ops.values()):.1%}"
        for name, ops in sorted(dynamic.behavior_ops.items())
    }
    print(f"  behaviour occupancy: {share}")
    return 0


def _write_report(text: str, output: Optional[str]) -> None:
    if output:
        with open(output, "w") as fh:
            fh.write(text + "\n")
        print(f"report written to {output}")
    else:
        print(text)


def _cmd_report(scale: ScaleConfig, output: Optional[str]) -> int:
    code, text = _run_local_job(scale, figures=None)
    if text is not None:
        _write_report(text, output)
    return code


def _cmd_run_all(
    scale: ScaleConfig,
    jobs: int,
    figures: Optional[str],
    output: Optional[str],
    quiet: bool,
    queue: Optional[str],
) -> int:
    from .errors import OrchestrationError
    from .experiments import ExperimentContext

    ctx = ExperimentContext(scale)
    try:
        if queue:
            from .fleet import QueueService

            service: "ExperimentService" = QueueService(
                ctx, Path(queue)
            )
        else:
            from .fleet import LocalService

            progress = (
                None
                if quiet
                else lambda line: print(line, file=sys.stderr, flush=True)
            )
            service = LocalService(ctx, jobs=jobs, progress=progress)
        handle = service.submit(figures=figures)
        if queue:
            print(
                f"job {handle.job_id} submitted to {queue}; waiting for "
                "fleet workers (start them with: pgss-sim worker "
                f"--queue {queue})",
                file=sys.stderr,
            )
        state = service.wait(handle)
        if state.state != "done":
            _print_failures(state)
            return 1
        text = service.fetch(handle)
    except OrchestrationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    _write_report(text, output)
    stats = ctx.cache.stats()
    print(
        f"cache: {stats['hits']} hits, {stats['misses']} misses, "
        f"{stats['races']} races, {stats['corrupt']} corrupt entries",
        file=sys.stderr,
    )
    return 0


def _cmd_rates(scale: ScaleConfig) -> int:
    from .experiments import ExperimentContext
    from .experiments.fig13_simulation_time import measure_rates

    rates = measure_rates(ExperimentContext(scale))
    for key, value in rates.items():
        print(f"{key:18s} {value / 1e3:10,.0f} kops/s")
    return 0


def _cmd_calibrate(scale: ScaleConfig) -> int:
    from .program import WORKLOAD_NAMES
    from .sampling import collect_reference_trace

    print(f"{'workload':14} {'IPC':>7} {'sigma':>7} {'cv':>6} "
          f"{'min':>6} {'max':>6}")
    for name in list(WORKLOAD_NAMES) + ["168.wupwise"]:
        trace = collect_reference_trace(get_workload(name, scale), scale.trace_window)
        ipcs = trace.ipcs
        print(f"{name:14} {trace.true_ipc:>7.3f} {float(ipcs.std()):>7.3f} "
              f"{float(ipcs.std() / ipcs.mean()):>6.2f} "
              f"{float(ipcs.min()):>6.2f} {float(ipcs.max()):>6.2f}")
    return 0


def _cmd_clear_cache(queue: Optional[str], sweep_only: bool) -> int:
    from .experiments import ResultCache

    cache = ResultCache()
    if sweep_only:
        swept = cache.sweep()
        print(
            f"swept cache: {swept['stale_claims']} stale claims, "
            f"{swept['tmp_files']} tmp files removed"
        )
    else:
        removed = cache.clear()
        print(f"removed {removed} cached files")
    if queue:
        from .fleet import JobQueue

        report = JobQueue(Path(queue)).sweep()
        print(
            f"swept queue {queue}: {report.stale_leases} stale leases "
            f"reclaimed ({report.requeued} tasks requeued, "
            f"{report.failed} failed out of retries), "
            f"{report.orphan_files} orphan files, "
            f"{report.orphan_checkpoints} orphan checkpoint dirs removed"
        )
    return 0


def _cmd_jobs(args: argparse.Namespace, scale: ScaleConfig) -> int:
    from .errors import OrchestrationError
    from .experiments import ExperimentContext
    from .fleet import JobQueue, QueueService

    queue_dir = Path(args.queue)
    try:
        if args.jobs_command == "submit":
            service = QueueService(
                ExperimentContext(scale),
                queue_dir,
                priority=args.priority,
                retries=args.retries,
            )
            handle = service.submit(figures=args.figures)
            total = service.status(handle).total
            print(handle.job_id)
            print(
                f"{total} cells queued in {queue_dir}; execute with: "
                f"pgss-sim worker --queue {queue_dir}",
                file=sys.stderr,
            )
            return 0
        if args.jobs_command == "status":
            queue = JobQueue(queue_dir)
            job_ids = [args.job] if args.job else queue.jobs()
            if not job_ids:
                print(f"no jobs in {queue_dir}")
                return 0
            for job_id in job_ids:
                state = queue.status(job_id)
                counts = ", ".join(
                    f"{k}: {v}" for k, v in sorted(state.counts.items()) if v
                )
                print(f"{state.job_id}  {state.state}  [{counts or 'empty'}]")
                for cell_id, error in sorted(state.failures.items()):
                    print(f"  {cell_id}: {error}")
                    if cell_id in state.logs:
                        print(f"    log: {state.logs[cell_id]}")
                if state.logs:
                    print(
                        f"  logs: {len(state.logs)} task log(s) under "
                        f"{queue.root / 'logs'}"
                    )
            return 0
        if args.jobs_command == "fetch":
            service = QueueService.from_queue(queue_dir, args.job)
            text = service.fetch(args.job)
            _write_report(text, args.output)
            return 0
        if args.jobs_command == "cancel":
            cancelled = QueueService.from_queue(queue_dir, args.job).cancel(
                args.job
            )
            print(
                f"job {args.job} "
                + ("cancelled" if cancelled else "already finished or cancelled")
            )
            return 0
    except OrchestrationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 2


def _cmd_worker(args: argparse.Namespace) -> int:
    from .errors import OrchestrationError
    from .fleet import (
        DEFAULT_CHECKPOINT_WINDOWS,
        DEFAULT_LEASE_S,
        DEFAULT_POLL_S,
        run_worker,
    )
    from .experiments.parallel import DEFAULT_TIMEOUT_S

    progress = (
        None
        if args.quiet
        else lambda line: print(line, file=sys.stderr, flush=True)
    )
    try:
        executed = run_worker(
            Path(args.queue),
            lease_s=args.lease if args.lease is not None else DEFAULT_LEASE_S,
            timeout_s=(
                args.timeout if args.timeout is not None else DEFAULT_TIMEOUT_S
            ),
            poll_s=args.poll if args.poll is not None else DEFAULT_POLL_S,
            drain=args.drain,
            max_cells=args.max_cells,
            checkpoint_windows=(
                args.checkpoint_windows
                if args.checkpoint_windows is not None
                else DEFAULT_CHECKPOINT_WINDOWS
            ),
            progress=progress,
        )
    except OrchestrationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("worker interrupted", file=sys.stderr)
        return 130
    print(f"worker executed {executed} cells", file=sys.stderr)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    scale = _SCALES[args.scale]
    if args.command == "list":
        return _cmd_list()
    if args.command == "simulate":
        return _cmd_simulate(scale, args.workload)
    if args.command == "inspect":
        return _cmd_inspect(scale, args.workload)
    if args.command == "sample":
        return _cmd_sample(
            scale,
            args.workload,
            args.technique,
            args.threshold,
            args.period,
            progress=args.progress,
        )
    if args.command == "figure":
        return _cmd_figure(scale, args.number)
    if args.command == "report":
        return _cmd_report(scale, args.output)
    if args.command == "run-all":
        return _cmd_run_all(
            scale, args.jobs, args.figures, args.output, args.quiet, args.queue
        )
    if args.command == "jobs":
        return _cmd_jobs(args, scale)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "rates":
        return _cmd_rates(scale)
    if args.command == "calibrate":
        return _cmd_calibrate(scale)
    if args.command == "clear-cache":
        return _cmd_clear_cache(args.queue, args.sweep)
    return 2


if __name__ == "__main__":
    sys.exit(main())

"""Figure 1 bench: sampling-timeline comparison regenerated from real runs.

The paper's Figure 1 is the conceptual picture: SMARTS samples uniformly,
SimPoint takes one large interval per phase, PGSS places small samples
phase-aware.  Regenerated claims: SMARTS takes the most samples, spaced
periodically; SimPoint's detailed spans are few but large; PGSS takes
fewer small samples than SMARTS.
"""

import numpy as np

from repro.experiments import fig01_timeline as fig01

from conftest import record


def test_fig01_timeline(benchmark, ctx, results_dir):
    result = benchmark.pedantic(fig01.run, args=(ctx,), rounds=1, iterations=1)
    record(results_dir, "fig01", fig01.format_result(result))

    # SMARTS: uniform spacing (low dispersion of gaps), more samples than
    # PGSS.
    gaps = np.diff(result["smarts_offsets"])
    assert gaps.std() < 0.2 * gaps.mean()
    assert result["n_pgss"] < result["n_smarts"]

    # SimPoint: few large detailed spans.
    assert result["n_simpoint"] <= 5
    span_ops = sum(end - start for start, end in result["simpoint_spans"])
    pgss_detail_ops = result["n_pgss"] * (
        ctx.scale.smarts_detail + ctx.scale.smarts_warmup
    )
    assert span_ops > pgss_detail_ops

    benchmark.extra_info["samples"] = {
        "smarts": result["n_smarts"],
        "simpoint_intervals": result["n_simpoint"],
        "pgss": result["n_pgss"],
    }

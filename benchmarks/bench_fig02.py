"""Figure 2 bench: IPC vs completed ops for 164.gzip at four periods.

Paper claim regenerated: fine-grained IPC variation is "averaged out, and
therefore invisible when the sampling period is large" — the per-period
IPC standard deviation falls monotonically as the period grows.
"""

from repro.experiments import fig02_sampling_granularity as fig02

from conftest import record


def test_fig02_sampling_granularity(benchmark, ctx, results_dir):
    result = benchmark.pedantic(fig02.run, args=(ctx,), rounds=1, iterations=1)
    text = fig02.format_result(result)
    record(results_dir, "fig02", text)

    stds = [series["std"] for series in result["series"]]
    # The headline shape: dispersion shrinks as the period grows.
    assert stds[0] > stds[-1] * 1.5, stds
    assert all(a >= b * 0.8 for a, b in zip(stds, stds[1:])), stds
    benchmark.extra_info["ipc_std_finest"] = round(stds[0], 4)
    benchmark.extra_info["ipc_std_coarsest"] = round(stds[-1], 4)

"""Extension bench: the accuracy / detail-budget Pareto frontier.

Regenerated claims:

* PGSS's operating points sit at detail budgets SMARTS cannot reach by
  period tuning without large error (the Fig. 12 thesis as a curve);
* cold fast-forwarding (no functional warming) is *biased*, not just
  noisier — the warming ablation gap is positive and large.
"""

from repro.experiments import tradeoff

from conftest import record


def test_tradeoff_pareto(benchmark, ctx, results_dir):
    result = benchmark.pedantic(tradeoff.run, args=(ctx,), rounds=1, iterations=1)
    record(results_dir, "tradeoff", tradeoff.format_result(result))

    # Cold sampling hurts: warming ablation gap is clearly positive.
    assert result["warming_gap"] > 2.0, result["warming_gap"]

    # Every PGSS point uses less detail than the densest SMARTS point …
    max_pgss_detail = max(p["mean_detailed_ops"] for p in result["pgss"])
    min_smarts_detail = min(s["mean_detailed_ops"] for s in result["smarts"])
    assert max_pgss_detail < min_smarts_detail * 2

    # … and at the lowest common budget PGSS is at least as accurate as
    # the cheapest (longest-period) SMARTS point.
    cheapest_smarts = min(
        result["smarts"], key=lambda s: s["mean_detailed_ops"]
    )
    best_pgss = min(result["pgss"], key=lambda p: p["a_mean_error"])
    assert best_pgss["a_mean_error"] <= cheapest_smarts["a_mean_error"] + 2.0

    benchmark.extra_info["warming_gap_pts"] = round(result["warming_gap"], 2)
    benchmark.extra_info["best_pgss_err"] = round(
        best_pgss["a_mean_error"], 2
    )

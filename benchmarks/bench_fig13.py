"""Figure 13 bench: simulation rates and total suite simulation time.

Paper claims regenerated:

* BBV tracking costs almost nothing: ~1% on detailed modes, negligible on
  functional warming (we allow a slightly looser bound for Python timing
  noise);
* functional fast-forwarding is only a small factor faster than detailed
  simulation in this class of simulator (the paper: ~4x), so wall-clock
  gains are smaller than detailed-op gains;
* PGSS's combined detailed warming + simulation time is a tiny fraction of
  any technique's total.
"""

from repro.experiments import fig13_simulation_time as fig13

from conftest import record


def test_fig13_simulation_time(benchmark, ctx, results_dir):
    result = benchmark.pedantic(fig13.run, args=(ctx,), rounds=1, iterations=1)
    record(results_dir, "fig13", fig13.format_result(result))

    rates = result["rates"]
    # Mode-speed ordering.
    assert rates["func_fast"] > rates["func_warm"] > 0
    assert rates["detail"] > 0
    # BBV overhead small on detail and warming.
    assert rates["detail+bbv"] > 0.7 * rates["detail"]
    assert rates["func_warm+bbv"] > 0.7 * rates["func_warm"]
    # Fast-forward vs detail gap is modest (paper: ~4x), bounded sanely.
    assert 1.0 < result["ff_vs_detail_ratio"] < 40.0

    totals = result["totals"]
    # PGSS's detailed time is a small share of its total.
    assert result["pgss_detail_seconds"] < 0.5 * totals["PGSS"]

    benchmark.extra_info["ff_vs_detail"] = round(result["ff_vs_detail_ratio"], 1)
    benchmark.extra_info["pgss_detail_seconds"] = round(
        result["pgss_detail_seconds"], 2
    )
    benchmark.extra_info["totals_seconds"] = {
        k: round(v, 1) for k, v in totals.items()
    }

"""Shared fixtures for the benchmark harness.

Every ``bench_figNN.py`` regenerates one of the paper's figures at the
SCALED operating point, timing the (cached) computation with
pytest-benchmark and writing the figure's table to ``results/figNN.txt``.
The first run populates the on-disk experiment cache (roughly half an hour
for the complete suite); subsequent runs are seconds.

Set ``REPRO_BENCH_SCALE=quick`` to exercise the harness on the miniature
scale instead.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.config import Scale
from repro.experiments import ExperimentContext

RESULTS_DIR = Path(__file__).resolve().parents[1] / "results"


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """The session-wide experiment context at the benchmarking scale."""
    scale = Scale.QUICK if os.environ.get("REPRO_BENCH_SCALE") == "quick" else Scale.SCALED
    return ExperimentContext(scale)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory collecting the regenerated figure tables."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def record(results_dir: Path, name: str, text: str) -> None:
    """Write one figure's table to ``results/<name>.txt``."""
    (results_dir / f"{name}.txt").write_text(text + "\n")

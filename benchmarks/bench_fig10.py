"""Figure 10 bench: threshold effects on 300.twolf's phase statistics.

Paper claims regenerated: "The number of detected phases quickly drops as
the threshold increases, but the variation in each phase raises quickly";
average interval length grows with the threshold.
"""

from repro.experiments import fig10_twolf_threshold as fig10

from conftest import record


def test_fig10_twolf_threshold(benchmark, ctx, results_dir):
    result = benchmark.pedantic(fig10.run, args=(ctx,), rounds=1, iterations=1)
    record(results_dir, "fig10", fig10.format_result(result))

    sweep = result["sweep"]
    phases = [e["n_phases"] for e in sweep]
    intervals = [e["mean_interval_ops"] for e in sweep]
    variations = [e["ipc_variation"] for e in sweep]

    assert phases[0] > phases[-1]
    assert phases[-1] >= 1
    assert intervals[-1] > intervals[0]
    # Variation at loose thresholds exceeds variation at the tightest.
    assert max(variations[-4:]) >= variations[0]
    benchmark.extra_info["phases_tightest"] = phases[0]
    benchmark.extra_info["phases_loosest"] = phases[-1]

"""Extension bench: the stratified-sampling gain (paper Section 2.2 / [17]).

Regenerated claims: stratifying window-IPC samples by phase cuts the
required sample count substantially; the online classifier's detected
phases recover a large share of the ground-truth stratification gain.
"""

from repro.experiments import stratification_gain

from conftest import record


def test_stratification_gain(benchmark, ctx, results_dir):
    result = benchmark.pedantic(
        stratification_gain.run, args=(ctx,), rounds=1, iterations=1
    )
    record(results_dir, "stratification", stratification_gain.format_result(result))

    rows = result["benchmarks"]
    # Stratification by detected phases helps on average, and clearly so
    # on at least one benchmark.
    assert result["mean_detected_gain"] > 1.2
    assert result["max_detected_gain"] > 2.0
    # Detected phases never need *more* samples than no stratification
    # (up to rounding noise on near-uniform benchmarks).
    for name, stats in rows.items():
        assert stats["detected_samples"] <= stats["unstratified_samples"] * 1.05, name

    benchmark.extra_info["mean_gain"] = round(result["mean_detected_gain"], 1)
    benchmark.extra_info["max_gain"] = round(result["max_detected_gain"], 1)

"""Fleet smoke: queue + worker processes vs serial, and kill/resume.

Exercises the job-service CLI end to end, the way a real fleet does —
every step is a ``pgss-sim`` subprocess, nothing is called in-process:

1. Serial baseline: ``run-all --jobs 1 --figures 2,12`` into a private
   cache, report written to a file.
2. Fleet run: ``jobs submit`` on a fresh queue + cache, two concurrent
   ``worker --drain`` processes, then ``jobs fetch``.  The fetched
   report must be byte-identical to the serial baseline.
3. Kill/resume: submit the same figures again, SIGKILL the first worker
   while it holds a claim, verify the job is not done, then let a second
   worker reap the dead lease and drain.  The fetched report must again
   be byte-identical to the serial baseline.

Run it directly (CI does)::

    PYTHONPATH=src python benchmarks/smoke_fleet.py
"""

import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

FIGURES = "2,12"
SCALE = "quick"
#: Give slow CI hosts room; quick scale finishes in well under this.
STEP_TIMEOUT_S = 600


def _cli(env, *args, **kwargs):
    """Run one pgss-sim command as a subprocess and return it."""
    cmd = [sys.executable, "-m", "repro.cli", "--scale", SCALE, *args]
    kwargs.setdefault("timeout", STEP_TIMEOUT_S)
    return subprocess.run(
        cmd, env=env, capture_output=True, text=True, **kwargs
    )


def _check(proc, step):
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"smoke_fleet: {step} exited {proc.returncode}")
    return proc


def _env(cache_dir):
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH")) if p
    )
    return env


def _spawn_worker(env, queue, *extra):
    cmd = [
        sys.executable, "-m", "repro.cli", "--scale", SCALE,
        "worker", "--queue", str(queue), "--drain", "--quiet", *extra,
    ]
    return subprocess.Popen(
        cmd, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
    )


def _wait_for_claim(queue, worker, deadline_s=STEP_TIMEOUT_S):
    """Block until some worker holds a task lease in *queue*."""
    claims = Path(queue) / "claims"
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if claims.is_dir() and any(claims.glob("*.json")):
            return
        if worker.poll() is not None:
            raise SystemExit(
                "smoke_fleet: worker exited before a claim was observed"
            )
        time.sleep(0.02)
    raise SystemExit("smoke_fleet: no worker claimed a task in time")


def serial_baseline(tmp, report):
    proc = _cli(
        _env(tmp / "cache-serial"),
        "run-all", "--jobs", "1", "--figures", FIGURES,
        "--quiet", "-o", str(report),
    )
    _check(proc, "serial run-all")


def fleet_run(tmp, report):
    env = _env(tmp / "cache-fleet")
    queue = tmp / "queue-fleet"
    submit = _check(
        _cli(env, "jobs", "submit", "--queue", str(queue),
             "--figures", FIGURES),
        "jobs submit",
    )
    job_id = submit.stdout.strip()
    workers = [_spawn_worker(env, queue) for _ in range(2)]
    for w in workers:
        if w.wait(timeout=STEP_TIMEOUT_S) != 0:
            raise SystemExit("smoke_fleet: fleet worker failed")
    _check(
        _cli(env, "jobs", "fetch", "--queue", str(queue), job_id,
             "-o", str(report)),
        "jobs fetch",
    )
    return job_id


def kill_resume_run(tmp, report):
    env = _env(tmp / "cache-resume")
    queue = tmp / "queue-resume"
    submit = _check(
        _cli(env, "jobs", "submit", "--queue", str(queue),
             "--figures", FIGURES),
        "jobs submit (resume)",
    )
    job_id = submit.stdout.strip()

    victim = _spawn_worker(env, queue, "--checkpoint-windows", "4")
    _wait_for_claim(queue, victim)
    time.sleep(0.3)  # let it get into the cell body
    victim.send_signal(signal.SIGKILL)
    victim.wait(timeout=30)

    status = _check(
        _cli(env, "jobs", "status", "--queue", str(queue), job_id),
        "jobs status after kill",
    )
    if f"{job_id}  done" in status.stdout:
        raise SystemExit(
            "smoke_fleet: worker finished before it could be killed; "
            "kill/resume not exercised"
        )

    successor = _spawn_worker(
        env, queue, "--checkpoint-windows", "4", "--lease", "5",
    )
    if successor.wait(timeout=STEP_TIMEOUT_S) != 0:
        raise SystemExit("smoke_fleet: successor worker failed")
    _check(
        _cli(env, "jobs", "fetch", "--queue", str(queue), job_id,
             "-o", str(report)),
        "jobs fetch (resume)",
    )
    return job_id


def main():
    tmp = Path(tempfile.mkdtemp(prefix="smoke-fleet-"))
    try:
        serial = tmp / "serial.txt"
        fleet = tmp / "fleet.txt"
        resumed = tmp / "resumed.txt"

        serial_baseline(tmp, serial)
        print(f"serial baseline: {serial.stat().st_size} bytes")

        fleet_run(tmp, fleet)
        if fleet.read_bytes() != serial.read_bytes():
            raise SystemExit(
                "smoke_fleet: 2-worker fleet report differs from serial"
            )
        print("fleet (2 workers): byte-identical to serial")

        kill_resume_run(tmp, resumed)
        if resumed.read_bytes() != serial.read_bytes():
            raise SystemExit(
                "smoke_fleet: resumed report differs from serial"
            )
        print("kill/resume: byte-identical to serial")
        print("smoke_fleet: ok")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    main()

"""Figure 3 bench: polymodal IPC distribution of the wupwise analogue.

Paper claim regenerated: the cycle-weighted IPC distribution of a phased
workload is "clearly ... non-Gaussian" — multiple modes, high bimodality
coefficient — undermining SMARTS' unimodal confidence analysis.
"""

from repro.experiments import fig03_ipc_distribution as fig03

from conftest import record


def test_fig03_ipc_distribution(benchmark, ctx, results_dir):
    result = benchmark.pedantic(fig03.run, args=(ctx,), rounds=1, iterations=1)
    record(results_dir, "fig03", fig03.format_result(result))

    assert len(result["modes"]) >= 2, result["modes"]
    assert result["bimodality_coefficient"] > fig03.GAUSSIAN_BC
    benchmark.extra_info["modes"] = [round(m, 2) for m in result["modes"]]
    benchmark.extra_info["bimodality"] = round(
        result["bimodality_coefficient"], 3
    )

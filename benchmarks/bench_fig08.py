"""Figure 8 bench: detection rate of significant IPC changes vs threshold.

Paper claims regenerated: detection falls as the threshold rises, larger
IPC changes are easier to catch, and there is a knee near .05 pi.
"""

from repro.experiments import fig08_detection_rate as fig08

from conftest import record


def test_fig08_detection_rate(benchmark, ctx, results_dir):
    result = benchmark.pedantic(fig08.run, args=(ctx,), rounds=1, iterations=1)
    record(results_dir, "fig08", fig08.format_result(result))

    curves = result["curves"]
    # Monotone-ish decay with threshold for every sigma level.
    for series in curves.values():
        assert series[0] == 1.0
        assert series[-1] < 0.5
    # Bigger IPC changes are caught at least as often (mid-threshold).
    mid = len(result["thresholds_pi"]) // 3
    assert curves["0.5"][mid] >= curves["0.1"][mid] - 0.05
    # Knee in the small-threshold region, as in the paper.
    assert result["knee_pi"] <= 0.15
    benchmark.extra_info["knee_pi"] = result["knee_pi"]

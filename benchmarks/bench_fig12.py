"""Figure 12 bench: error and detailed-simulation cost, all techniques.

Paper claims regenerated (comparative shape, not absolute factors — the
interval scale-down compresses ratios, see DESIGN.md):

* SMARTS is highly accurate but detail-hungry;
* PGSS needs far less detailed simulation than SMARTS (paper: ~10x;
  scaled: >=4x) and vastly less than SimPoint (paper: 100-1000x;
  scaled: >=15x);
* PGSS is more accurate *and* cheaper than TurboSMARTS;
* TurboSMARTS' true error exceeds its confidence bound on some converged
  benchmarks (the Gaussian-assumption failure);
* Online SimPoint is the least accurate phase-based technique.
"""

from repro.experiments import fig12_technique_comparison as fig12

from conftest import record


def test_fig12_technique_comparison(benchmark, ctx, results_dir):
    result = benchmark.pedantic(fig12.run, args=(ctx,), rounds=1, iterations=1)
    record(results_dir, "fig12", fig12.format_result(result))

    smarts = result["SMARTS"]
    turbo = result["TurboSMARTS"]
    simpoint = result["SimPoint"]["best_overall"]
    pgss = result["PGSS"]["best_overall"]
    pgss_best = result["PGSS"]["best_per_benchmark"]
    olsp = result["OnlineSimPoint"]["best_overall"]

    # Detail-cost ordering: PGSS << SMARTS < SimPoint.  The factors hold
    # at the SCALED operating point; the miniature QUICK scale compresses
    # them (too few sampling periods per phase), so only ordering is
    # asserted there.
    scaled = ctx.scale.name != "quick"
    smarts_factor = 4 if scaled else 1
    simpoint_factor = 10 if scaled else 2
    assert pgss["mean_detailed_ops"] * smarts_factor < smarts["mean_detailed_ops"]
    assert pgss["mean_detailed_ops"] * simpoint_factor < simpoint["mean_detailed_ops"]
    assert pgss["mean_detailed_ops"] < turbo["mean_detailed_ops"]

    # Accuracy: SMARTS accurate; PGSS(best) competitive and better than
    # TurboSMARTS; OLSP the weakest phase technique.
    assert smarts["a_mean"] < 12.0
    assert pgss_best["a_mean"] <= turbo["a_mean"] + 1.0
    assert olsp["a_mean"] >= result["SimPoint"]["best_per_benchmark"]["a_mean"]

    benchmark.extra_info["smarts_a_mean"] = round(smarts["a_mean"], 2)
    benchmark.extra_info["pgss_a_mean"] = round(pgss["a_mean"], 2)
    benchmark.extra_info["detail_reduction_vs_smarts"] = round(
        smarts["mean_detailed_ops"] / pgss["mean_detailed_ops"], 1
    )
    benchmark.extra_info["detail_reduction_vs_simpoint"] = round(
        simpoint["mean_detailed_ops"] / pgss["mean_detailed_ops"], 1
    )

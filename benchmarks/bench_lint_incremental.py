"""Incremental-lint bench: warm-cache re-analysis after one dirty file.

Copies ``src/repro`` into a scratch tree, runs the whole-program
analyzer twice against a fresh cache (cold fill, then fully-warm
verification), dirties exactly one leaf module, and re-runs.  The CI
smoke gate asserts that the dirty re-run extracts exactly the one
changed module and re-analyzes under 25% of the tree — the whole point
of keying the findings cache on import-closure content hashes.  Wall
times and module counts land in ``results/BENCH_lint_incremental.json``.
"""

import json
import platform
import shutil
import time
from pathlib import Path

from repro.analysis import default_project_rules, default_rules
from repro.analysis.dataflow import AnalysisCache, analyze_project

from conftest import record

#: A leaf module nothing else imports — its closure is the smallest
#: possible invalidation footprint.
DIRTY_MODULE = "experiments/fig03_ipc_distribution.py"

SRC_REPRO = Path(__file__).resolve().parents[1] / "src" / "repro"


def _run(root, cache_path):
    cache = AnalysisCache(cache_path)
    start = time.perf_counter()  # simlint: disable=DET005
    findings, stats = analyze_project(
        [str(root)],
        default_project_rules(),
        ast_rules=default_rules(),
        cache=cache,
    )
    elapsed = time.perf_counter() - start  # simlint: disable=DET005
    return findings, stats, elapsed


def test_incremental_lint(tmp_path, results_dir):
    scratch = tmp_path / "repro"
    shutil.copytree(SRC_REPRO, scratch)
    cache_path = tmp_path / "lint.cache"

    findings, cold, cold_s = _run(scratch, cache_path)
    assert findings == [], [str(f) for f in findings]
    assert cold.modules_extracted == cold.modules_total

    _, warm, warm_s = _run(scratch, cache_path)
    assert warm.modules_extracted == 0
    assert warm.modules_analyzed == 0

    target = scratch / DIRTY_MODULE
    target.write_text(target.read_text() + "\n# bench: dirty marker\n")
    _, dirty, dirty_s = _run(scratch, cache_path)

    fraction = dirty.modules_analyzed / dirty.modules_total
    assert dirty.modules_extracted == 1
    assert fraction < 0.25, (
        f"dirty re-run analyzed {dirty.modules_analyzed}/"
        f"{dirty.modules_total} modules ({fraction:.0%}); incremental "
        "invalidation should stay under 25%"
    )

    payload = {
        "host": platform.node(),
        "modules_total": dirty.modules_total,
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "dirty_s": round(dirty_s, 3),
        "dirty_modules_analyzed": dirty.modules_analyzed,
        "dirty_fraction": round(fraction, 4),
        "speedup_warm": round(cold_s / warm_s, 1) if warm_s else None,
    }
    (results_dir / "BENCH_lint_incremental.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    record(
        results_dir,
        "lint_incremental",
        f"incremental lint: {dirty.modules_analyzed}/{dirty.modules_total} "
        f"modules re-analyzed after 1 dirty file ({fraction:.0%}), "
        f"warm run {warm_s * 1000:.0f} ms vs cold {cold_s * 1000:.0f} ms",
    )

"""Future-work bench: PGSS on a shared-L2 chip multiprocessor.

Paper Section 7: "Work is ongoing to extend PGSS to multithreaded and
multicore processors."  This bench co-runs a compute-bound and a
memory-bound benchmark on two cores sharing one L2, obtains per-core
ground truth from a fully detailed co-run, and checks that per-core PGSS
estimates track it with a small detail fraction.
"""

from repro.cpu import Mode, MultiCoreEngine, MultiCorePgss
from repro.sampling import PgssConfig

from conftest import record

PAIR = ("177.mesa", "181.mcf")


def _run(ctx):
    def compute():
        programs = [ctx.program(name) for name in PAIR]
        truth = MultiCoreEngine(
            [ctx.program(name) for name in PAIR], machine=ctx.machine
        ).run_all(Mode.DETAIL)
        config = PgssConfig.from_scale(ctx.scale)
        estimates = MultiCorePgss(lambda core: config, machine=ctx.machine).run(
            programs
        )
        out = {}
        for core, result in estimates.items():
            true_ipc = truth[core].ipc
            out[str(core)] = {
                "program": result.program,
                "true_ipc": true_ipc,
                "pgss_ipc": result.ipc_estimate,
                "error_pct": 100.0 * abs(result.ipc_estimate - true_ipc) / true_ipc,
                "detailed_ops": result.detailed_ops,
                "total_ops": truth[core].ops,
                "n_phases": result.extras["n_phases"],
            }
        return out

    return ctx.cache.json(
        {
            "kind": "multicore_pgss",
            "pair": PAIR,
            "scale": ctx.scale.name,
            "ops": ctx.scale.benchmark_ops,
        },
        compute,
    )


def test_multicore_pgss(benchmark, ctx, results_dir):
    result = benchmark.pedantic(_run, args=(ctx,), rounds=1, iterations=1)

    lines = ["Future work — per-core PGSS on a shared-L2 CMP", ""]
    for core, stats in sorted(result.items()):
        lines.append(
            f"  core {core} ({stats['program']}): true IPC "
            f"{stats['true_ipc']:.4f}, PGSS {stats['pgss_ipc']:.4f} "
            f"({stats['error_pct']:.2f}% err), detail "
            f"{stats['detailed_ops']:,} of {stats['total_ops']:,} ops, "
            f"{stats['n_phases']} phases"
        )
    record(results_dir, "multicore", "\n".join(lines))

    for stats in result.values():
        # Per-core estimates track the co-run ground truth …
        assert stats["error_pct"] < 25.0, stats
        # … with a small detail fraction.
        assert stats["detailed_ops"] < 0.2 * stats["total_ops"]
    benchmark.extra_info["errors_pct"] = {
        core: round(stats["error_pct"], 2) for core, stats in result.items()
    }

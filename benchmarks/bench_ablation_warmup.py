"""Ablation bench: detailed warm-up length before each SMARTS sample.

Paper Section 2.2: "each detailed simulation period is immediately
preceded by an interval of three or four thousand instructions of detailed
simulation in which statistics are not measured.  This pre-sample
simulation is used to warm up short-lifetime structures of the processor."

Swept here: warm-up of 0, 1x and 2x the scale's canonical length, on three
benchmarks, at a fixed total detail budget per sample (so accuracy changes
come from warm-up placement, not extra detail).
"""

from dataclasses import replace

from repro.sampling.smarts import Smarts, SmartsConfig

from conftest import record

SUBSET = ("164.gzip", "183.equake", "300.twolf")


def _run_point(ctx, warmup_ops: int):
    errors = []
    cfg = replace(SmartsConfig.from_scale(ctx.scale), warmup_ops=warmup_ops)
    for name in SUBSET:
        res = ctx.run_cached(
            name,
            Smarts(cfg, ctx.machine),
            {"warmup": warmup_ops, "sweep": "warmup_ablation"},
        )
        true = ctx.true_ipc(name)
        errors.append(100.0 * abs(res["ipc_estimate"] - true) / true)
    return sum(errors) / len(errors)


def test_ablation_detailed_warmup(benchmark, ctx, results_dir):
    base = ctx.scale.smarts_warmup

    def run():
        return {
            "none (0 ops)": _run_point(ctx, 0),
            f"canonical ({base} ops)": _run_point(ctx, base),
            f"double ({2 * base} ops)": _run_point(ctx, 2 * base),
        }

    variants = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation — detailed warm-up before each sample", ""]
    for label, err in variants.items():
        lines.append(f"  {label:24s} A-mean err {err:6.2f}%")
    record(results_dir, "ablation_warmup", "\n".join(lines))

    # Removing the pre-sample warm-up must not improve accuracy; with
    # warming-FF keeping caches warm, the gap is modest but real because
    # short-lifetime pipeline state is re-established by the warm-up.
    assert variants["none (0 ops)"] >= variants[f"canonical ({base} ops)"] - 2.0
    benchmark.extra_info.update({k: round(v, 2) for k, v in variants.items()})

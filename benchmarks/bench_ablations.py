"""Ablation benches for the PGSS design choices DESIGN.md calls out.

Four ablations, each on a three-benchmark subset:

* **BBV width** — the paper's reduced 32-register file vs a 1024-bucket
  wide vector: the reduced hash must not cost much accuracy (that is what
  makes the Fig. 4 hardware cheap).
* **Distance metric** — the paper's cosine/angle vs SimPoint's Manhattan
  distance for online phase matching.
* **Sample spreading** — the Fig. 5 "1M ops since last sample in phase?"
  rule vs sampling immediately whenever a phase is out of bounds.
* **Confidence stopping** — per-phase CI stopping vs a fixed sample count
  per phase (the prior-work strategy the paper criticises).
"""

from typing import Dict

from repro.sampling.pgss import Pgss, PgssConfig

from conftest import record

SUBSET = ("164.gzip", "183.equake", "300.twolf")


def _run_variant(ctx, label: str, **overrides) -> Dict[str, float]:
    """Run a PGSS variant over the subset; returns mean error / detail."""
    errors = []
    details = []
    for name in SUBSET:
        config = PgssConfig.from_scale(ctx.scale, **overrides)
        technique = Pgss(config, machine=ctx.machine)
        res = ctx.run_cached(
            name,
            technique,
            {"ablation": label, **{k: str(v) for k, v in overrides.items()}},
        )
        errors.append(
            100.0
            * abs(res["ipc_estimate"] - ctx.true_ipc(name))
            / ctx.true_ipc(name)
        )
        details.append(res["detailed_ops"])
    return {
        "a_mean_error": sum(errors) / len(errors),
        "mean_detailed_ops": sum(details) / len(details),
    }


def _report(results_dir, name: str, variants: Dict[str, Dict[str, float]]) -> str:
    lines = [f"Ablation — {name}", ""]
    for label, stats in variants.items():
        lines.append(
            f"  {label:30s} A-mean err {stats['a_mean_error']:6.2f}%   "
            f"detail {stats['mean_detailed_ops']:>12,.0f} ops"
        )
    text = "\n".join(lines)
    record(results_dir, f"ablation_{name}", text)
    return text


def test_ablation_bbv_width(benchmark, ctx, results_dir):
    def run():
        return {
            "reduced (32 buckets, Fig. 4)": _run_variant(ctx, "width32"),
            "wide (1024 buckets)": _run_variant(
                ctx, "width1024", wide_bbv_buckets=1024
            ),
            "narrow (4 buckets)": _run_variant(
                ctx, "width4", wide_bbv_buckets=4
            ),
        }

    variants = benchmark.pedantic(run, rounds=1, iterations=1)
    _report(results_dir, "bbv_width", variants)
    reduced = variants["reduced (32 buckets, Fig. 4)"]
    wide = variants["wide (1024 buckets)"]
    # The cheap reduced hash must stay in the same accuracy class as the
    # wide vector (paper's premise for the 32-register hardware); with
    # the handful of static blocks these workloads have, the two usually
    # classify identically.
    assert reduced["a_mean_error"] < wide["a_mean_error"] + 15.0
    benchmark.extra_info.update(
        {k: round(v["a_mean_error"], 2) for k, v in variants.items()}
    )


def test_ablation_distance_metric(benchmark, ctx, results_dir):
    def run():
        return {
            "angle (cosine, paper)": _run_variant(ctx, "angle"),
            # A Manhattan threshold of 0.5 on unit-L2 vectors is roughly
            # comparable selectivity to .05 pi.
            "manhattan (SimPoint-style)": _run_variant(
                ctx, "manhattan", metric="manhattan", threshold_pi=0.5 / 3.1416
            ),
        }

    variants = benchmark.pedantic(run, rounds=1, iterations=1)
    _report(results_dir, "distance_metric", variants)
    angle = variants["angle (cosine, paper)"]
    assert angle["a_mean_error"] < 40.0
    benchmark.extra_info.update(
        {k: round(v["a_mean_error"], 2) for k, v in variants.items()}
    )


def test_ablation_spread_rule(benchmark, ctx, results_dir):
    def run():
        return {
            "spread rule on (Fig. 5)": _run_variant(ctx, "spread_on"),
            "spread rule off": _run_variant(
                ctx, "spread_off", use_spread_rule=False
            ),
        }

    variants = benchmark.pedantic(run, rounds=1, iterations=1)
    _report(results_dir, "spread_rule", variants)
    on = variants["spread rule on (Fig. 5)"]
    off = variants["spread rule off"]
    # Without spreading, sampling concentrates at early phase occurrences:
    # at least as much detail is spent.
    assert off["mean_detailed_ops"] >= on["mean_detailed_ops"] * 0.9
    benchmark.extra_info["on_detail"] = round(on["mean_detailed_ops"])
    benchmark.extra_info["off_detail"] = round(off["mean_detailed_ops"])


def test_ablation_confidence_stopping(benchmark, ctx, results_dir):
    def run():
        return {
            "CI stopping (paper)": _run_variant(ctx, "ci_stop"),
            "fixed 1 sample/phase (prior work)": _run_variant(
                ctx, "fixed1", fixed_samples_per_phase=1
            ),
            "fixed 3 samples/phase": _run_variant(
                ctx, "fixed3", fixed_samples_per_phase=3
            ),
        }

    variants = benchmark.pedantic(run, rounds=1, iterations=1)
    _report(results_dir, "confidence_stopping", variants)
    ci = variants["CI stopping (paper)"]
    fixed1 = variants["fixed 1 sample/phase (prior work)"]
    # One sample per phase (the prior-work strategy) is cheaper but less
    # accurate than adaptive CI-driven sampling.  The accuracy margin only
    # holds with enough sampling periods, i.e. at the SCALED point.
    assert fixed1["mean_detailed_ops"] <= ci["mean_detailed_ops"]
    margin = 2.0 if ctx.scale.name != "quick" else 15.0
    assert ci["a_mean_error"] <= fixed1["a_mean_error"] + margin
    benchmark.extra_info.update(
        {k: round(v["a_mean_error"], 2) for k, v in variants.items()}
    )

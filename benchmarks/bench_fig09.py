"""Figure 9 bench: false-positive share of detected phase changes.

Paper claims regenerated: false positives fall as the threshold rises (the
reason not to set it at zero) and rise with the IPC-significance bar.
"""

from repro.experiments import fig09_false_positives as fig09

from conftest import record


def test_fig09_false_positives(benchmark, ctx, results_dir):
    result = benchmark.pedantic(fig09.run, args=(ctx,), rounds=1, iterations=1)
    record(results_dir, "fig09", fig09.format_result(result))

    thresholds = result["thresholds_pi"]
    for series in result["curves"].values():
        # Compare the small-threshold region with the large-threshold one.
        early = sum(series[1:4]) / 3
        late = sum(series[-4:-1]) / 3
        assert late <= early + 0.05, (early, late)
    # A stricter significance bar makes more detections "false".
    idx = thresholds.index(0.1)
    assert result["curves"]["0.5"][idx] >= result["curves"]["0.1"][idx] - 1e-9
    benchmark.extra_info["fp_at_05pi_3sigma"] = round(
        result["curves"]["0.3"][thresholds.index(0.06)], 3
    )

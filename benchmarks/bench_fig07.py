"""Figure 6/7 bench: the (BBV change, IPC change) joint distribution.

Paper claim regenerated: "BBV changes greater than approximately .05 pi
radians typically correspond to a large change in IPC" — most mass sits in
the small-change corner, and the .05 pi / .3 sigma region split catches the
majority of significant IPC changes.
"""

from repro.experiments import fig07_change_distribution as fig07

from conftest import record


def test_fig07_change_distribution(benchmark, ctx, results_dir):
    result = benchmark.pedantic(fig07.run, args=(ctx,), rounds=1, iterations=1)
    record(results_dir, "fig07", fig07.format_result(result))

    assert result["n_pairs"] > 100
    # The Fig. 6 regions partition all pairs.
    assert sum(result["regions"].values()) == result["n_pairs"]
    # Most significant IPC changes are caught at the .05pi threshold.
    assert result["big_change_detection"] > 0.5
    benchmark.extra_info["detection_at_05pi"] = round(
        result["big_change_detection"], 3
    )

"""Parallel-runner bench: serial vs fanned-out cell execution.

Runs the same figure cell set twice from cold caches — once with
``jobs=1`` (the serial baseline) and once fanned out over worker
processes — then assembles each figure from both caches and compares the
results byte for byte.  Identity must hold on any machine; the >= 2x
speedup bar only applies where there are enough cores to pay for the
process fan-out (>= 4), though cpu count, wall times, and the measured
speedup are always recorded in ``results/BENCH_parallel_runner.json``.
"""

import importlib
import json
import os
import platform
import time

from repro.experiments import ExperimentContext, enumerate_cells, run_cells
from repro.experiments.formatting import table

from conftest import record

#: Figure modules whose cells form the bench workload (deterministic
#: cells only — fig13's rate cell measures host time and cannot be
#: byte-compared across independent caches).
BENCH_FIGURES = (
    "fig07_change_distribution",
    "fig11_pgss_sweep",
)


def _fresh_ctx(base_ctx, cache_dir):
    return ExperimentContext(
        base_ctx.scale,
        machine=base_ctx.machine,
        cache_dir=cache_dir,
        benchmarks=base_ctx.benchmarks,
    )


def _timed_run(ctx, jobs):
    cells = enumerate_cells(ctx, figures=list(BENCH_FIGURES))
    start = time.perf_counter()  # simlint: disable=DET005
    outcomes = run_cells(ctx, cells, jobs=jobs)
    elapsed = time.perf_counter() - start  # simlint: disable=DET005
    assert all(o.status == "ok" for o in outcomes)
    return elapsed, len(cells)


def _figure_bytes(ctx):
    """Canonical bytes of every bench figure, assembled from ctx's cache."""
    chunks = []
    for name in BENCH_FIGURES:
        module = importlib.import_module(f"repro.experiments.{name}")
        chunks.append(json.dumps(module.run(ctx), sort_keys=True))
    return "\n".join(chunks)


def measure(base_ctx, tmp_dir):
    cpus = os.cpu_count() or 1
    jobs = max(2, min(cpus, 8))

    serial_ctx = _fresh_ctx(base_ctx, tmp_dir / "serial")
    parallel_ctx = _fresh_ctx(base_ctx, tmp_dir / "parallel")

    serial_s, n_cells = _timed_run(serial_ctx, jobs=1)
    parallel_s, _ = _timed_run(parallel_ctx, jobs=jobs)

    return {
        "cpus": cpus,
        "jobs": jobs,
        "n_cells": n_cells,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else 0.0,
        "byte_identical": _figure_bytes(serial_ctx) == _figure_bytes(parallel_ctx),
    }


def format_result(result):
    rows = [
        ["serial (jobs=1)", f"{result['serial_s']:.2f} s"],
        [f"parallel (jobs={result['jobs']})", f"{result['parallel_s']:.2f} s"],
        ["speedup", f"{result['speedup']:.2f}x"],
        ["byte-identical", str(result["byte_identical"])],
    ]
    header = (
        "Parallel runner — serial vs fanned-out cell execution "
        f"({result['n_cells']} cells over {', '.join(BENCH_FIGURES)}; "
        f"{result['cpus']} cpus)\n\n"
    )
    return header + table(["run", "value"], rows)


def test_parallel_runner(benchmark, ctx, results_dir, tmp_path):
    result = benchmark.pedantic(
        measure, args=(ctx, tmp_path), rounds=1, iterations=1
    )
    record(results_dir, "parallel_runner", format_result(result))

    payload = {
        "figures": list(BENCH_FIGURES),
        "scale": ctx.scale.name,
        "python": platform.python_version(),
        "cpus": result["cpus"],
        "jobs": result["jobs"],
        "n_cells": result["n_cells"],
        "serial_s": round(result["serial_s"], 3),
        "parallel_s": round(result["parallel_s"], 3),
        "speedup": round(result["speedup"], 2),
        "byte_identical": result["byte_identical"],
    }
    (results_dir / "BENCH_parallel_runner.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    # Identity holds unconditionally; the speedup bar needs real cores.
    assert result["byte_identical"]
    if result["cpus"] >= 4:
        assert result["speedup"] >= 2.0

    benchmark.extra_info["speedup"] = round(result["speedup"], 2)
    benchmark.extra_info["byte_identical"] = result["byte_identical"]

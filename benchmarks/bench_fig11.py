"""Figure 11 bench: the PGSS period x threshold sweep over ten benchmarks.

Paper claims regenerated:

* accuracy "varies widely between benchmarks and with changes in the
  parameters";
* the best overall configuration pairs a mid-length period with a tight
  threshold (the paper: 1M at .05 pi; here the scaled mid period);
* 179.art and 181.mcf perform very poorly at the shortest BBV period and
  improve at longer ones (their micro-phases straddle short periods).
"""

from repro.experiments import fig11_pgss_sweep as fig11

from conftest import record


def test_fig11_pgss_sweep(benchmark, ctx, results_dir):
    result = benchmark.pedantic(fig11.run, args=(ctx,), rounds=1, iterations=1)
    record(results_dir, "fig11", fig11.format_result(result))

    grid = result["grid"]
    assert len(grid) == len(ctx.scale.pgss_periods) * len(ctx.scale.thresholds)

    # Parameter sensitivity: the spread between the best and worst
    # configurations is large.
    a_means = [g["a_mean"] for g in grid]
    assert max(a_means) > 1.5 * min(a_means)

    # art/mcf short-period pathology: their error at the shortest period
    # (averaged over thresholds) exceeds their best long-period error.
    def mean_err(benchmark_name, period):
        errs = [
            g["errors"][benchmark_name] for g in grid if g["period"] == period
        ]
        return sum(errs) / len(errs)

    periods = ctx.scale.pgss_periods
    for name in ("179.art", "181.mcf"):
        if name not in ctx.benchmarks:
            continue
        short = mean_err(name, periods[0])
        best_long = min(
            g["errors"][name] for g in grid if g["period"] != periods[0]
        )
        assert short > best_long, (name, short, best_long)

    benchmark.extra_info["best_overall"] = (
        f"{result['best_overall']['period']}/"
        f"{result['best_overall']['threshold_pi']}"
    )
    benchmark.extra_info["best_a_mean_pct"] = round(
        result["best_overall"]["a_mean"], 2
    )

"""Engine-rate bench: scalar vs. batched throughput for every mode.

Measures the raw simulation rate (ops/second) of every execution mode
through both dispatch paths and asserts the batched layer delivers its
headline speedups: FUNC_FAST with BBV tracking at least 5x the scalar
event loop, and the batched detailed pipeline (run-length scoreboard
batching plus steady-state memoization) at least 10x the scalar DETAIL
loop.

Shared machines drift in effective speed by tens of percent over
minutes, which is far more than the margins being asserted.  Each
gated mode is therefore measured as an interleaved best-of-N: the
batched and scalar arms alternate rep by rep (so both sample the same
machine phases) and each arm keeps its best rate.  Ratios of best
rates are stable where single-shot ratios swing wildly.

Beyond the human-readable table in ``results/engine_rate.txt``, the raw
numbers land in ``results/BENCH_engine_rate.json`` for machine
consumption (CI trend lines, the README performance section).
"""

import json
import platform
import time

from repro import BbvTracker, Mode, SimulationEngine
from repro.experiments.formatting import table

from conftest import record

#: Calibration workload and op budget (per timed run).
RATE_BENCHMARK = "164.gzip"
RATE_OPS = 600_000

#: Reps per arm for the gated modes (interleaved, best-of-N).  The
#: batched arm's timed region is ~10x shorter than the scalar arm's, so
#: it needs more samples to pin down its peak rate.
RATE_REPS = 3
RATE_REPS_BATCHED = 6

#: Modes with a distinct batched dispatch path (scalar arm also timed).
BATCHED_MODES = (Mode.DETAIL, Mode.DETAIL_WARM, Mode.FUNC_FAST, Mode.FUNC_WARM)


def _rate_once(ctx, mode, with_bbv, batched):
    program = ctx.program(RATE_BENCHMARK)
    tracker = BbvTracker() if with_bbv else None
    engine = SimulationEngine(
        program, machine=ctx.machine, bbv_tracker=tracker,
        batched=None if batched else False,
    )
    # Warm the interpreter before timing.
    engine.run(mode, RATE_OPS // 10)
    start = time.perf_counter()  # simlint: disable=DET005
    run = engine.run(mode, RATE_OPS)
    elapsed = time.perf_counter() - start  # simlint: disable=DET005
    return run.ops / elapsed if elapsed > 0 else 0.0


def measure(ctx):
    rates = {}
    for mode in Mode:
        for with_bbv in (False, True):
            suffix = "+bbv" if with_bbv else ""
            if mode in BATCHED_MODES:
                # Interleave the arms so a machine-speed phase hits both.
                best_b = best_s = 0.0
                for rep in range(RATE_REPS_BATCHED):
                    b = _rate_once(ctx, mode, with_bbv, True)
                    if b > best_b:
                        best_b = b
                    if rep < RATE_REPS:
                        s = _rate_once(ctx, mode, with_bbv, False)
                        if s > best_s:
                            best_s = s
                rates[f"{mode.value}{suffix}"] = best_b
                rates[f"{mode.value}_scalar{suffix}"] = best_s
            else:
                rates[f"{mode.value}{suffix}"] = _rate_once(
                    ctx, mode, with_bbv, True
                )
    speedups = {
        f"{mode.value}{suffix}": (
            rates[f"{mode.value}{suffix}"]
            / rates[f"{mode.value}_scalar{suffix}"]
        )
        for mode in BATCHED_MODES
        for suffix in ("", "+bbv")
        if rates[f"{mode.value}_scalar{suffix}"]
    }
    return {"rates": rates, "speedups": speedups}


def format_result(result):
    rows = []
    for mode in Mode:
        scalar_key = f"{mode.value}_scalar"
        for suffix in ("", "+bbv"):
            key = f"{mode.value}{suffix}"
            scalar = result["rates"].get(scalar_key + suffix)
            rows.append(
                [
                    key,
                    f"{result['rates'][key] / 1e3:,.0f} kops/s",
                    f"{scalar / 1e3:,.0f} kops/s" if scalar else "-",
                    f"{result['speedups'][key]:.1f}x"
                    if key in result["speedups"]
                    else "-",
                ]
            )
    header = (
        "Engine throughput — batched vs. scalar dispatch "
        f"({RATE_BENCHMARK}, {RATE_OPS:,} ops per timed run, best of "
        f"{RATE_REPS_BATCHED} batched / {RATE_REPS} scalar interleaved reps)\n"
        f"batched FUNC_FAST+BBV speedup: "
        f"{result['speedups'].get('func_fast+bbv', 0.0):.1f}x\n"
        f"batched DETAIL speedup: "
        f"{result['speedups'].get('detail', 0.0):.1f}x\n\n"
    )
    return header + table(["mode", "batched", "scalar", "speedup"], rows)


def test_engine_rate(benchmark, ctx, results_dir):
    result = benchmark.pedantic(measure, args=(ctx,), rounds=1, iterations=1)
    record(results_dir, "engine_rate", format_result(result))

    payload = {
        "benchmark": RATE_BENCHMARK,
        "ops_per_run": RATE_OPS,
        "reps_per_arm": {"batched": RATE_REPS_BATCHED, "scalar": RATE_REPS},
        "scale": ctx.scale.name,
        "python": platform.python_version(),
        "rates_ops_per_sec": {k: round(v, 1) for k, v in result["rates"].items()},
        "speedups": {k: round(v, 2) for k, v in result["speedups"].items()},
    }
    (results_dir / "BENCH_engine_rate.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    rates = result["rates"]
    # Every mode must make forward progress.
    assert all(r > 0 for r in rates.values())
    # The acceptance bars: batched FUNC_FAST with BBV at least 5x scalar,
    # batched DETAIL at least 10x the scalar detailed loop.
    assert result["speedups"]["func_fast+bbv"] >= 5.0
    assert result["speedups"]["func_fast"] >= 5.0
    assert result["speedups"]["detail"] >= 10.0
    # The warm variants batch the same way; guard against regression
    # without pinning them to the headline floor.
    assert result["speedups"]["detail_warm"] >= 5.0
    assert result["speedups"]["func_warm+bbv"] >= 0.9

    benchmark.extra_info["speedups"] = {
        k: round(v, 1) for k, v in result["speedups"].items()
    }
